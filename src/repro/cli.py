"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's evaluation:

* ``list`` — available machine models and benchmarks.
* ``run`` — simulate one configuration and print its statistics.
* ``table2`` — regenerate the Table 2 path-length ratios.
* ``fig4`` / ``fig5`` / ``fig6`` — the register-window sweeps.
* ``fig7`` / ``fig8`` — the SMT studies.
* ``sec43`` — the 4-thread cache-traffic comparison.
* ``sweep`` — run a declarative sweep plan through the experiment
  engine: parallel workers, per-point fault isolation and timeout,
  live progress, a JSONL journal and ``--resume``.
* ``disasm`` — disassemble a generated benchmark binary.
* ``trace`` — render a JSONL event trace (from ``run --trace-out``)
  as a per-instruction pipeline view; ``--follow`` tails a growing
  trace live.
* ``profile`` — where simulation wall-clock time goes: per-stage
  attribution plus cProfile hot functions.
* ``top`` — live terminal dashboard over a run ledger
  (``--ledger``): progress, cache hit rate, worker utilization, ETA,
  rolling IPC aggregates.
* ``report`` — render a run ledger as a self-contained HTML report
  (span waterfall, stage flame view, per-point table).
* ``bench diff`` — compare fresh cycle-loop throughput against the
  ``BENCH_perf.json`` history; non-zero exit past the threshold.
* ``lint`` — the simulator-aware static analysis suite
  (``repro.lint``); the CI gate runs ``repro lint --strict``.

Figure commands accept ``--workers N`` to run their plan on the
parallel engine; ``sweep`` exposes the full engine surface.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import MachineConfig
from repro.models import MODELS, build_machine, model_abi
from repro.workloads import (
    ALL_BENCHMARKS, DIAG_BENCHMARKS, PROFILES, RW_BENCHMARKS,
    TABLE2_RATIOS,
)


def _cmd_list(args) -> int:
    print("machine models:")
    for name in sorted(MODELS):
        print(f"  {name:16s} ({model_abi(name)} ABI)")
    print("\nregister-window suite (Table 2):")
    for name in RW_BENCHMARKS:
        print(f"  {name:16s} paper ratio {TABLE2_RATIOS[name]:.2f}")
    print("\nadditional SMT-pool benchmarks:")
    for name in ALL_BENCHMARKS:
        if name not in RW_BENCHMARKS:
            print(f"  {name}")
    print("\ndiagnostic workloads (run/trace only, not in the "
          "experiment pool):")
    for name in DIAG_BENCHMARKS:
        print(f"  {name}")
    return 0


def _cmd_run(args) -> int:
    from repro.obs import JsonlSink, MetricsRegistry, build_tracer
    from repro.workloads.generator import benchmark_program

    benches = args.bench_pos or args.bench
    abi = model_abi(args.model)
    programs = [benchmark_program(b, abi, thread=i, scale=args.scale,
                                  seed=args.seed)
                for i, b in enumerate(benches)]
    cfg = MachineConfig.baseline(phys_regs=args.regs,
                                 dl1_ports=args.ports)
    smeta = None
    if args.sample and len(benches) != 1:
        print("repro run: --sample is single-threaded; give one "
              "benchmark", file=sys.stderr)
        return 2
    if args.sample and (args.trace or args.trace_out):
        print("repro run: --sample simulates disjoint windows; "
              "tracing is only meaningful on full runs",
              file=sys.stderr)
        return 2

    ledger = spans = root = prev = ru0 = None
    run_key = f"run/{args.model}/{'+'.join(benches)}@{args.regs}"
    if args.ledger:
        from repro.experiments.engine import _rusage_snapshot
        from repro.experiments.runner import source_hash
        from repro.hooks import set_current_spans
        from repro.obs import RunLedger, SpanTracer
        ledger = RunLedger(args.ledger,
                           command=" ".join(sys.argv[1:]) or "run",
                           config_hash=source_hash())
        spans = SpanTracer()
        ledger.run_start(total=1, workers=1, trace_id=spans.trace_id)
        root = spans.begin("run", model=args.model,
                           label=run_key)
        prev = set_current_spans(spans)
        ru0 = _rusage_snapshot()

    try:
        if args.sample:
            from repro.sampling import SamplingConfig, run_sampled
            scfg = SamplingConfig(interval_len=args.sample_interval,
                                  n_detailed=args.sample_count,
                                  mode=args.sample_mode,
                                  warmup_insns=args.sample_warmup)
            metrics = (MetricsRegistry(args.metrics_interval)
                       if args.metrics_interval is not None else None)
            stats, smeta = run_sampled(args.model,
                                       cfg.with_(n_threads=1),
                                       programs[0], scfg,
                                       metrics=metrics)
        else:
            from repro.hooks import current_spans
            tracer = build_tracer(trace=args.trace, out=args.trace_out)
            metrics = (MetricsRegistry(args.metrics_interval)
                       if args.metrics_interval is not None else None)
            machine = build_machine(args.model, cfg, programs,
                                    tracer=tracer, metrics=metrics)
            sp = current_spans()
            with sp.span("simulate", model=args.model):
                stats = machine.run(stop_at_first_halt=len(benches) > 1)
    except BaseException:  # lint: allow-broad-except
        if ledger is not None:
            from repro.experiments.engine import _rusage_delta
            from repro.hooks import set_current_spans
            spans.close(status="terminated")
            ledger.point(key=run_key, status="failed",
                         error="exception (see stderr)",
                         rusage=_rusage_delta(ru0),
                         spans=spans.drain())
            ledger.run_end(status="interrupted",
                           counts={"failed": 1})
            ledger.close()
            set_current_spans(prev)
        raise
    if ledger is not None:
        from repro.experiments.engine import _rusage_delta
        from repro.hooks import set_current_spans
        spans.end(root, status="ok")
        ledger.point(
            key=run_key, status="done",
            payload={"cycles": stats.cycles,
                     "committed": [t.committed for t in stats.threads]},
            elapsed=(root.t1 or 0.0) - root.t0,
            cache="miss", rusage=_rusage_delta(ru0),
            spans=spans.drain())
        ledger.run_end(status="ok", counts={"done": 1},
                       elapsed=(root.t1 or 0.0) - root.t0)
        ledger.close()
        set_current_spans(prev)
        print(f"ledger: appended run {ledger.run_id} to {ledger.path}")
    print(f"model={args.model} regs={args.regs} ports={args.ports} "
          f"benches={','.join(benches)}"
          + (f" seed={args.seed}" if args.seed is not None else ""))
    print(stats.summary())
    if smeta is not None:
        errs = " ".join(f"{k}±{v:.1%}" for k, v in
                        sorted(smeta.errors.items()))
        print(f"sampling: mode={smeta.mode} "
              f"intervals={smeta.n_detailed}/{smeta.n_intervals}"
              f"x{smeta.interval_len} "
              f"detailed_cycles={smeta.detailed_cycles} "
              f"(est {smeta.est_cycles}, {smeta.speedup:.1f}x fewer) "
              f"{errs}")
    if not args.sample:
        tracer.close()
        for sink in tracer.sinks:
            if isinstance(sink, JsonlSink):
                print(f"trace: wrote {sink.written} events to "
                      f"{sink.path}")
    if args.json:
        from repro.experiments.export import write_stats_json
        extra = ({"sampling": smeta.to_dict()}
                 if smeta is not None else {})
        out = write_stats_json(args.json, stats, model=args.model,
                               benches=list(benches), regs=args.regs,
                               ports=args.ports, scale=args.scale,
                               seed=args.seed, **extra)
        print(f"stats: wrote {out}")
    return 0


def _cmd_profile(args) -> int:
    """Where does simulation wall-clock time go?

    Two passes over the same configuration: a clean timing pass with
    per-stage wall-clock attribution (repro.obs.profile), then —
    unless ``--top 0`` — a second pass under cProfile for per-function
    hot spots.  Two passes because cProfile's tracing overhead would
    distort the stage timings and the cycles/sec headline.
    """
    import cProfile
    import pstats

    from repro.obs import MetricsRegistry, profile_machine
    from repro.workloads.generator import benchmark_program

    benches = args.bench_pos or args.bench
    abi = model_abi(args.model)

    def machine():
        programs = [benchmark_program(b, abi, thread=i,
                                      scale=args.scale, seed=args.seed)
                    for i, b in enumerate(benches)]
        cfg = MachineConfig.baseline(phys_regs=args.regs,
                                     dl1_ports=args.ports)
        return build_machine(args.model, cfg, programs)

    registry = MetricsRegistry()
    stats, prof = profile_machine(machine(),
                                  stop_at_first_halt=len(benches) > 1,
                                  registry=registry)
    cps = stats.cycles / prof.total_seconds if prof.total_seconds else 0
    attributed = prof.cycle_attribution(stats.cycles)

    top = []
    if args.top > 0:
        profiler = cProfile.Profile()
        m2 = machine()
        profiler.enable()
        m2.run(stop_at_first_halt=len(benches) > 1)
        profiler.disable()
        st = pstats.Stats(profiler)
        st.sort_stats("cumulative")
        for func, (cc, nc, tt, ct, _callers) in st.stats.items():
            filename, lineno, name = func
            top.append({"function": name, "file": filename,
                        "line": lineno, "calls": nc,
                        "tottime": tt, "cumtime": ct})
        top.sort(key=lambda r: r["tottime"], reverse=True)
        top = top[:args.top]

    print(f"model={args.model} benches={','.join(benches)} "
          f"regs={args.regs} ports={args.ports} scale={args.scale}")
    print(f"cycles={stats.cycles}  wall={prof.total_seconds:.3f}s  "
          f"{cps:,.0f} cycles/sec")
    print()
    print(f"{'stage':<16}{'seconds':>10}{'share':>8}{'cycles est':>12}")
    stage_total = prof.stage_seconds_total
    for label, entry in prof.to_dict(stats.cycles)["stages"].items():
        secs = entry["seconds"]
        share = secs / stage_total if stage_total else 0
        print(f"{label:<16}{secs:>10.3f}{share:>7.1%}"
              f"{attributed[label]:>12.1f}")
    if top:
        print()
        print(f"{'tottime':>9}{'cumtime':>9}{'calls':>10}  function")
        for r in top:
            print(f"{r['tottime']:>9.3f}{r['cumtime']:>9.3f}"
                  f"{r['calls']:>10}  {r['function']} "
                  f"({r['file']}:{r['line']})")

    if args.json:
        import json as _json
        from repro.experiments.export import (
            PROFILE_SCHEMA, SCHEMA_VERSION)
        payload = {
            "schema": PROFILE_SCHEMA,
            "schema_version": SCHEMA_VERSION,
            "model": args.model, "benches": list(benches),
            "regs": args.regs, "ports": args.ports,
            "scale": args.scale, "seed": args.seed,
            "cycles": stats.cycles, "committed": stats.committed,
            "cycles_per_sec": cps,
            "profile": prof.to_dict(stats.cycles),
            "metrics": registry.to_dict(),
            "top_functions": top,
        }
        from pathlib import Path
        Path(args.json).write_text(
            _json.dumps(payload, indent=2, sort_keys=True))
        print(f"\nprofile: wrote {args.json}")
    return 0


def _cmd_lint(args) -> int:
    # Lazy: the lint machinery is never needed on the simulation path.
    from repro.lint import lint_main
    return lint_main(args)


def _parse_cycle_range(spec: str):
    """``A:B`` with either end optional → ``(lo, hi)`` (None = open)."""
    lo_s, sep, hi_s = spec.partition(":")
    if not sep:
        raise ValueError(f"expected A:B, got {spec!r}")
    return (int(lo_s) if lo_s else None,
            int(hi_s) if hi_s else None)


def _in_cycle_range(ev: dict, lo, hi) -> bool:
    cycle = ev.get("cycle")
    if cycle is None:
        return lo is None and hi is None
    return ((lo is None or cycle >= lo)
            and (hi is None or cycle <= hi))


def _fmt_event(ev: dict) -> str:
    rest = " ".join(f"{k}={ev[k]}" for k in sorted(ev)
                    if k not in ("cycle", "tid", "kind"))
    return (f"{ev.get('cycle', '?'):>8} t{ev.get('tid', '?')} "
            f"{ev.get('kind', '?'):<12} {rest}".rstrip())


def _follow_trace(path, lo, hi, tid, idle_timeout) -> int:
    """Tail a growing JSONL trace, printing one line per event."""
    import json
    import time as _time

    try:
        fh = open(path, "r")
    except OSError as exc:
        print(f"repro trace: cannot read {path}: {exc}",
              file=sys.stderr)
        return 2
    printed = 0
    idle = 0.0
    with fh:
        while True:
            line = fh.readline()
            if not line:
                if idle_timeout is not None and idle >= idle_timeout:
                    print(f"(follow: idle {idle_timeout:g}s, "
                          f"{printed} events shown)", file=sys.stderr)
                    return 0
                _time.sleep(0.1)
                idle += 0.1
                continue
            idle = 0.0
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except ValueError:
                continue  # partial line mid-write; next read retries
            if tid is not None and ev.get("tid") != tid:
                continue
            if not _in_cycle_range(ev, lo, hi):
                continue
            print(_fmt_event(ev), flush=True)
            printed += 1


def _cmd_trace(args) -> int:
    from repro.obs import read_jsonl
    from repro.obs.pipeview import event_counts, render_pipeline_view

    lo = hi = None
    if args.cycle_range:
        try:
            lo, hi = _parse_cycle_range(args.cycle_range)
        except ValueError:
            print(f"repro trace: --cycle-range wants A:B (either end "
                  f"optional), got {args.cycle_range!r}",
                  file=sys.stderr)
            return 2
    if args.follow:
        if args.counts:
            print("repro trace: --follow and --counts are exclusive",
                  file=sys.stderr)
            return 2
        return _follow_trace(args.path, lo, hi, args.tid,
                             args.idle_timeout)
    try:
        events = list(read_jsonl(args.path))
    except OSError as exc:
        print(f"repro trace: cannot read {args.path}: {exc}",
              file=sys.stderr)
        return 2
    if args.cycle_range:
        events = [ev for ev in events if _in_cycle_range(ev, lo, hi)]
    if args.counts:
        counts = event_counts(events)
        width = max((len(k) for k in counts), default=4)
        for kind in sorted(counts):
            print(f"{kind:<{width}}  {counts[kind]}")
        return 0
    print(render_pipeline_view(events, tid=args.tid, limit=args.limit))
    return 0


def _cmd_top(args) -> int:
    from repro.obs.dashboard import top_loop
    return top_loop(args.path, interval=args.interval,
                    max_ticks=1 if args.once else None,
                    clear=not args.once)


def _cmd_report(args) -> int:
    from pathlib import Path

    from repro.obs import read_ledger
    from repro.obs.htmlreport import render_html

    try:
        records = read_ledger(args.path)
    except OSError as exc:
        print(f"repro report: cannot read {args.path}: {exc}",
              file=sys.stderr)
        return 2
    if not records:
        print(f"repro report: {args.path} has no ledger records",
              file=sys.stderr)
        return 2
    out = Path(args.out or Path(args.path).with_suffix(".html"))
    out.write_text(render_html(records, title=args.title))
    print(f"report: wrote {out}")
    return 0


def _cmd_bench_diff(args) -> int:
    from repro.experiments.benchdiff import bench_diff
    return bench_diff(history_path=args.history, rounds=args.rounds,
                      threshold=args.threshold,
                      report_only=args.report_only,
                      json_out=args.json)


def _cmd_table2(args) -> int:
    from repro.experiments.report import render_table
    from repro.functional import measure_path_length
    from repro.workloads import build_benchmark

    rows = []
    for name in RW_BENCHMARKS:
        r = measure_path_length(lambda: build_benchmark(name))
        rows.append((name, TABLE2_RATIOS[name], r.ratio))
    print(render_table(["benchmark", "paper", "measured"], rows,
                       title="Table 2: windowed/flat path-length ratio"))
    return 0


def _engine_from(args):
    """Build the execution engine the flags ask for (None → serial)."""
    workers = getattr(args, "workers", 0) or 0
    timeout = getattr(args, "timeout", None)
    use_cache = not getattr(args, "no_cache", False)
    if workers > 1:
        from repro.experiments.engine import ParallelEngine
        return ParallelEngine(workers=workers, timeout=timeout,
                              use_cache=use_cache)
    from repro.experiments.engine import SerialEngine
    return SerialEngine(use_cache=use_cache)


def _emit_series(series, title, args) -> int:
    from repro.experiments.report import render_series
    print(render_series(title, "phys regs", series))
    if getattr(args, "csv", None):
        from repro.experiments.export import write_series_csv
        out = write_series_csv(args.csv, "phys_regs", series)
        print(f"\n(wrote {out})")
    return 0


def _rw_figure(fn, title, args) -> int:
    benches = args.bench or list(RW_BENCHMARKS)
    series = fn(benches=tuple(benches), scale=args.scale,
                engine=_engine_from(args))
    return _emit_series(series, title, args)


def _cmd_fig4(args) -> int:
    from repro.experiments.rw import fig4_execution_time
    return _rw_figure(fig4_execution_time,
                      "Figure 4: normalized execution time", args)


def _cmd_fig5(args) -> int:
    from repro.experiments.rw import fig5_cache_accesses
    return _rw_figure(fig5_cache_accesses,
                      "Figure 5: normalized data-cache accesses", args)


def _cmd_fig6(args) -> int:
    from repro.experiments.rw import fig6_single_port
    return _rw_figure(fig6_single_port,
                      "Figure 6: single-port execution time", args)


def _cmd_fig7(args) -> int:
    from repro.experiments.smt import fig7_smt
    return _emit_series(fig7_smt(scale=args.scale,
                                 engine=_engine_from(args)),
                        "Figure 7: SMT weighted speedup", args)


def _cmd_fig8(args) -> int:
    from repro.experiments.smt import fig8_smt_rw
    return _emit_series(fig8_smt_rw(scale=args.scale,
                                    engine=_engine_from(args)),
                        "Figure 8: SMT + register windows", args)


def _cmd_sec43(args) -> int:
    from repro.experiments.report import render_table
    from repro.experiments.smt import sec43_cache_traffic
    apw = sec43_cache_traffic(scale=args.scale,
                              engine=_engine_from(args))
    print(render_table(["machine", "DL1 accesses / flat-equiv instr"],
                       sorted(apw.items()),
                       title="Section 4.3: 4-thread cache traffic"))
    return 0


def _sweep_spec(args):
    """The plan the ``sweep`` command was asked to run."""
    from repro.experiments.rw import (
        REG_SIZES, RW_MODELS, fig4_plan, fig5_plan, fig6_plan, rw_plan,
    )
    from repro.experiments.smt import vectors_plan

    benches = tuple(args.bench or RW_BENCHMARKS)
    sizes = tuple(args.sizes or REG_SIZES)
    if args.plan == "rw":
        return rw_plan(models=tuple(args.models or RW_MODELS),
                       sizes=sizes, benches=benches,
                       dl1_ports=args.ports, scale=args.scale)
    if args.plan == "vectors":
        return vectors_plan(scale=args.scale)
    fig = {"fig4": fig4_plan, "fig5": fig5_plan, "fig6": fig6_plan}
    return fig[args.plan](benches=benches, sizes=sizes,
                          scale=args.scale)


def _cmd_sweep(args) -> int:
    import time

    from repro.experiments.report import (
        render_outcome_summary, render_progress, render_series,
    )
    from repro.obs import MetricsRegistry

    spec = _sweep_spec(args)
    points = spec.points()
    if args.sample:
        import dataclasses
        multi = [p for p in points
                 if p.kind == "run" and len(p.benches) != 1]
        if multi:
            print(f"repro sweep: --sample is single-threaded, but "
                  f"plan {args.plan!r} has multi-thread points "
                  f"(e.g. {multi[0].label})", file=sys.stderr)
            return 2
        points = [dataclasses.replace(
                      p, sample=True,
                      sample_interval=args.sample_interval,
                      sample_count=args.sample_count,
                      sample_mode=args.sample_mode)
                  if p.kind == "run" else p
                  for p in points]
    engine = _engine_from(args)
    metrics = MetricsRegistry()
    live = sys.stderr.isatty()

    ledger = None
    if args.ledger:
        from repro.experiments.runner import source_hash
        from repro.obs import RunLedger
        ledger = RunLedger(args.ledger,
                           command=" ".join(sys.argv[1:]) or "sweep",
                           config_hash=source_hash())

    def on_progress(p) -> None:
        line = render_progress(p)
        if live:
            print(f"\r{line}\x1b[K", end="", file=sys.stderr,
                  flush=True)
        else:
            print(line, file=sys.stderr, flush=True)

    t0 = time.monotonic()
    try:
        outcomes = engine.run(
            points, journal=args.journal, resume=args.resume,
            progress=None if args.quiet else on_progress,
            metrics=metrics, ledger=ledger)
    finally:
        if ledger is not None:
            ledger.close()
    if live and not args.quiet:
        print(file=sys.stderr)
    if ledger is not None:
        print(f"ledger: run {ledger.run_id} appended to {ledger.path} "
              f"(try `repro report {ledger.path}`)", file=sys.stderr)
    print(render_outcome_summary(outcomes, time.monotonic() - t0))

    failed = [oc for oc in outcomes.values() if not oc.ok]
    # Reductions index outcomes by reconstructing the plan's own
    # (full-detail) points, which sampled points deliberately do not
    # equal — skip rather than KeyError.
    if spec.reduce is not None and not failed and not args.sample:
        print()
        print(render_series(f"{spec.name} series", "phys regs",
                            spec.reduce(outcomes)))
    if args.csv:
        from repro.experiments.export import write_outcomes_csv
        print(f"(wrote {write_outcomes_csv(args.csv, outcomes)})")
    if args.metrics:
        dist = metrics.dists.get("sweep.point_seconds")
        for name in sorted(metrics.counters):
            print(f"{name} = {metrics.counters[name]:g}")
        if dist is not None and dist.count:
            print(f"sweep.point_seconds mean={dist.mean:.3f} "
                  f"p90={dist.percentile(90):.3f} max={dist.max:.3f}")
    return 1 if failed else 0


def _cmd_disasm(args) -> int:
    from repro.workloads.generator import benchmark_program
    prog = benchmark_program(args.bench[0], args.abi)
    text = prog.disassemble()
    lines = text.splitlines()
    print("\n".join(lines[:args.limit]))
    if len(lines) > args.limit:
        print(f"... ({len(lines) - args.limit} more lines)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'How to Fake 1000 Registers' "
                    "(MICRO 2005)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list models and benchmarks") \
        .set_defaults(fn=_cmd_list)

    run = sub.add_parser("run", help="simulate one configuration")
    run.add_argument("bench_pos", nargs="*", metavar="BENCH",
                     help="benchmarks, one per hardware thread "
                          "(same as --bench)")
    run.add_argument("--model", choices=sorted(MODELS), default="vca-rw")
    run.add_argument("--bench", nargs="+", default=["gzip_graphic"],
                     metavar="NAME",
                     help="one benchmark per hardware thread")
    run.add_argument("--regs", type=int, default=256)
    run.add_argument("--ports", type=int, default=2)
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--seed", type=int, default=None,
                     help="perturb workload generation (default: the "
                          "fixed per-benchmark streams)")
    run.add_argument("--trace", action="store_true",
                     help="record pipeline events (ring buffer)")
    run.add_argument("--trace-out", metavar="PATH", default=None,
                     help="write events as JSONL (implies --trace)")
    run.add_argument("--metrics-interval", type=int, default=None,
                     metavar="N",
                     help="enable the metrics registry, snapshotting "
                          "counters every N cycles (0: final only)")
    run.add_argument("--json", metavar="PATH", default=None,
                     help="also write full stats as JSON")
    run.add_argument("--ledger", metavar="PATH", default=None,
                     help="append a run-ledger record (spans, rusage) "
                          "readable by `repro top` / `repro report`")
    run.add_argument("--sample", action="store_true",
                     help="checkpointed sampled simulation: detailed-"
                          "simulate representative intervals and "
                          "extrapolate (single benchmark only)")
    run.add_argument("--sample-interval", type=int, default=2000,
                     metavar="N", help="instructions per interval")
    run.add_argument("--sample-count", type=int, default=8,
                     metavar="K", help="intervals simulated in detail")
    run.add_argument("--sample-mode",
                     choices=["systematic", "bbv"],
                     default="systematic",
                     help="representative selection: evenly spaced, "
                          "or SimPoint-style BBV clustering")
    run.add_argument("--sample-warmup", type=int, default=500,
                     metavar="N",
                     help="detailed (unmeasured) warmup instructions "
                          "before each interval")
    run.set_defaults(fn=_cmd_run)

    for name, fn, with_bench in [
            ("table2", _cmd_table2, False),
            ("fig4", _cmd_fig4, True), ("fig5", _cmd_fig5, True),
            ("fig6", _cmd_fig6, True), ("fig7", _cmd_fig7, False),
            ("fig8", _cmd_fig8, False), ("sec43", _cmd_sec43, False)]:
        p = sub.add_parser(name, help=f"regenerate {name}")
        if with_bench:
            p.add_argument("--bench", nargs="+", default=None,
                           metavar="NAME")
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument("--csv", metavar="PATH", default=None,
                       help="also write the series as CSV")
        if name != "table2":
            p.add_argument("--workers", type=int, default=0,
                           metavar="N",
                           help="run the sweep on N parallel workers")
            p.add_argument("--timeout", type=float, default=None,
                           metavar="SECS",
                           help="per-point timeout (parallel only)")
        p.set_defaults(fn=fn)

    sw = sub.add_parser(
        "sweep", help="run a sweep plan through the experiment engine")
    sw.add_argument("plan",
                    choices=["rw", "fig4", "fig5", "fig6", "vectors"],
                    help="plan to run: the raw register-window grid, "
                         "a Section 4.1 figure, or the SMT "
                         "characterisation runs")
    sw.add_argument("--models", nargs="+", default=None, metavar="NAME",
                    help="machine models (rw plan; default: all four)")
    sw.add_argument("--sizes", nargs="+", type=int, default=None,
                    metavar="N", help="physical register file sizes")
    sw.add_argument("--bench", nargs="+", default=None, metavar="NAME",
                    help="benchmarks (default: the Table 2 suite)")
    sw.add_argument("--ports", type=int, default=2,
                    help="DL1 ports (rw plan)")
    sw.add_argument("--scale", type=float, default=None,
                    help="workload scale (default: REPRO_SCALE or 1.0)")
    sw.add_argument("--workers", type=int, default=0, metavar="N",
                    help="parallel worker processes (default: serial)")
    sw.add_argument("--timeout", type=float, default=None,
                    metavar="SECS", help="per-point timeout")
    sw.add_argument("--journal", metavar="PATH", default=None,
                    help="append per-point results to a JSONL journal")
    sw.add_argument("--ledger", metavar="PATH", default=None,
                    help="append the run ledger (spans, rusage, cache "
                         "hits) here; doubles as a resume journal")
    sw.add_argument("--resume", action="store_true",
                    help="skip points already completed in --journal "
                         "(or --ledger when no journal is given)")
    sw.add_argument("--no-cache", action="store_true",
                    help="ignore (and don't consult) the result cache")
    sw.add_argument("--sample", action="store_true",
                    help="run every single-benchmark point through "
                         "checkpointed sampled simulation")
    sw.add_argument("--sample-interval", type=int, default=2000,
                    metavar="N", help="instructions per interval")
    sw.add_argument("--sample-count", type=int, default=8,
                    metavar="K", help="intervals simulated in detail")
    sw.add_argument("--sample-mode",
                    choices=["systematic", "bbv"],
                    default="systematic",
                    help="representative-interval selection mode")
    sw.add_argument("--csv", metavar="PATH", default=None,
                    help="write per-point outcomes as CSV")
    sw.add_argument("--metrics", action="store_true",
                    help="print engine metrics (repro.obs registry)")
    sw.add_argument("--quiet", action="store_true",
                    help="suppress the live progress line")
    sw.set_defaults(fn=_cmd_sweep)

    prof = sub.add_parser(
        "profile",
        help="profile a run: per-stage wall-clock attribution "
             "and cProfile hot functions")
    prof.add_argument("bench_pos", nargs="*", metavar="BENCH",
                      help="benchmarks, one per hardware thread "
                           "(same as --bench)")
    prof.add_argument("--model", choices=sorted(MODELS),
                      default="vca-rw")
    prof.add_argument("--bench", nargs="+", default=["gzip_graphic"],
                      metavar="NAME")
    prof.add_argument("--regs", type=int, default=256)
    prof.add_argument("--ports", type=int, default=2)
    prof.add_argument("--scale", type=float, default=1.0)
    prof.add_argument("--seed", type=int, default=None)
    prof.add_argument("--top", type=int, default=10, metavar="N",
                      help="cProfile functions to show "
                           "(0: skip the cProfile pass)")
    prof.add_argument("--json", metavar="PATH", default=None,
                      help="also write the profile record as JSON")
    prof.set_defaults(fn=_cmd_profile)

    dis = sub.add_parser("disasm", help="disassemble a benchmark")
    dis.add_argument("--bench", nargs=1, default=["gzip_graphic"])
    dis.add_argument("--abi", choices=["flat", "windowed"],
                     default="windowed")
    dis.add_argument("--limit", type=int, default=60)
    dis.set_defaults(fn=_cmd_disasm)

    tr = sub.add_parser("trace",
                        help="render a JSONL trace as a pipeline view")
    tr.add_argument("path", help="trace file from `run --trace-out`")
    tr.add_argument("--tid", type=int, default=None,
                    help="show only this hardware thread")
    tr.add_argument("--limit", type=int, default=64,
                    help="max instructions to show (default 64)")
    tr.add_argument("--counts", action="store_true",
                    help="print per-kind event totals instead")
    tr.add_argument("--follow", action="store_true",
                    help="tail the trace live, printing events as the "
                         "simulator appends them")
    tr.add_argument("--cycle-range", metavar="A:B", default=None,
                    help="only events with A <= cycle <= B (either "
                         "end may be omitted, e.g. 100: or :5000)")
    tr.add_argument("--idle-timeout", type=float, default=None,
                    metavar="SECS",
                    help="with --follow: exit once the file stops "
                         "growing for SECS (default: follow forever)")
    tr.set_defaults(fn=_cmd_trace)

    top = sub.add_parser(
        "top", help="live terminal dashboard over a run ledger")
    top.add_argument("path", help="ledger file from `sweep --ledger`")
    top.add_argument("--interval", type=float, default=1.0,
                     metavar="SECS",
                     help="refresh interval (default 1s)")
    top.add_argument("--once", action="store_true",
                     help="render one snapshot and exit")
    top.set_defaults(fn=_cmd_top)

    rep = sub.add_parser(
        "report", help="render a run ledger as self-contained HTML")
    rep.add_argument("path", help="ledger file from `sweep --ledger`")
    rep.add_argument("--out", metavar="PATH", default=None,
                     help="output file (default: ledger path with "
                          ".html suffix)")
    rep.add_argument("--title", default=None,
                     help="report title (default: the run id)")
    rep.set_defaults(fn=_cmd_report)

    bench = sub.add_parser(
        "bench", help="performance-benchmark utilities")
    bsub = bench.add_subparsers(dest="bench_cmd", required=True)
    bd = bsub.add_parser(
        "diff", help="compare fresh cycle-loop throughput against "
                     "the BENCH_perf.json history")
    bd.add_argument("--history", metavar="PATH", default=None,
                    help="history file (default: BENCH_perf.json at "
                         "the repo root)")
    bd.add_argument("--rounds", type=int, default=3, metavar="N",
                    help="measurement rounds per benchmark (best-of)")
    bd.add_argument("--threshold", type=float, default=0.15,
                    help="regression threshold as a fraction below "
                         "the history baseline (default 0.15)")
    bd.add_argument("--report-only", action="store_true",
                    help="always exit 0 (CI soft mode): report the "
                         "numbers without gating")
    bd.add_argument("--json", metavar="PATH", default=None,
                    help="also write the comparison rows as JSON")
    bd.set_defaults(fn=_cmd_bench_diff)

    ln = sub.add_parser(
        "lint", help="simulator-aware static analysis of the source "
                     "tree (see docs/linting.md)")
    ln.add_argument("paths", nargs="*", metavar="PATH",
                    help="report only findings under these "
                         "repo-relative paths")
    ln.add_argument("--json", action="store_true",
                    help="machine-readable findings on stdout")
    ln.add_argument("--strict", action="store_true",
                    help="also fail on stale baseline entries")
    ln.add_argument("--baseline", metavar="FILE", default=None,
                    help="baseline file "
                         "(default: tools/lint_baseline.json)")
    ln.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from current findings")
    ln.add_argument("--rules", action="store_true",
                    help="print the rule catalog and exit")
    ln.add_argument("--root", metavar="DIR", default=None,
                    help="package directory to lint "
                         "(default: the installed repro package)")
    ln.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    benches = list(getattr(args, "bench_pos", None) or [])
    benches += getattr(args, "bench", None) or []
    for bench in benches:
        # PROFILES (not ALL_BENCHMARKS) so the diagnostic workloads
        # are runnable without joining the experiment pool.
        if bench not in PROFILES:
            parser.error(f"unknown benchmark {bench!r}; "
                         f"see `python -m repro list`")
    for model in getattr(args, "models", None) or []:
        if model not in MODELS:
            parser.error(f"unknown model {model!r}; "
                         f"see `python -m repro list`")
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
