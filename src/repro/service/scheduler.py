"""The scheduler layer: a job queue over a shared worker pool.

A :class:`Scheduler` accepts sweep-plan submissions (lists of
:class:`~repro.experiments.plan.Point`), resolves result-store hits
*before* any worker is forked, and schedules the residue onto one
shared process pool with the exact worker mechanics of
:class:`~repro.experiments.engine.ParallelEngine` — the same
``_worker_main``, the same Pipe protocol, the same crash/timeout
isolation, the same span propagation.  On top of the engine it adds
what a multi-client service needs:

* **priorities** — higher-priority jobs are scheduled first; FIFO
  within a priority level;
* **per-tenant quotas** — a tenant never holds more than its quota of
  worker slots, so one heavy client cannot starve the rest;
* **in-flight dedupe** — two jobs asking for the same point (same
  content-addressed cache key) share one execution;
* **cross-process claims** — with a sqlite store attached, a point is
  claimed before it forks, so a second scheduler (or a concurrent
  CLI sweep) hammering the same store waits for the result instead of
  double-running the point;
* **audit + telemetry** — one :class:`~repro.obs.runlog.RunLedger`
  per job (``repro top`` / ``repro report`` work unchanged on it),
  ``service.*`` counters on a metrics registry, and submit/cancel
  audit rows in the store.

Results themselves flow through the repository layer: workers inherit
``REPRO_STORE``/``REPRO_CACHE_DIR`` through ``repro_env()`` and write
their payloads straight into the shared store.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.engine import (
    ParallelEngine, PointOutcome, _SPAN_STATUS, _worker_main,
    repro_env,
)
from repro.experiments.plan import Point, unique_points
from repro.experiments.runner import source_hash
from repro.experiments.store import SqliteStore
from repro.functional.interp import resolve_functional_mode
from repro.obs.metrics import MetricsRegistry
from repro.obs.runlog import RunLedger
from repro.obs.spans import SpanTracer

__all__ = ["Job", "Scheduler", "JOB_STATUSES", "POINT_STATUSES"]

#: Terminal job statuses.
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled")
#: Per-point record statuses (a superset of the engine's outcome
#: statuses: ``waiting`` is "claimed elsewhere", ``cancelled`` is
#: service-side).
POINT_STATUSES = ("queued", "waiting", "running", "done", "cached",
                  "failed", "timeout", "cancelled")
_TERMINAL = ("done", "cached", "failed", "timeout", "cancelled")
_OK = ("done", "cached")


@dataclass
class Job:
    """One submitted sweep: its points, identity, and progress."""

    id: str
    tenant: str
    priority: int
    label: str
    points: List[Point]
    submitted: float
    seq: int
    status: str = "queued"
    started: Optional[float] = None
    finished: Optional[float] = None
    #: idx -> point record (see :meth:`Scheduler._record`).
    records: Dict[int, Dict] = field(default_factory=dict)
    ledger: Optional[RunLedger] = None
    spans: Optional[SpanTracer] = None
    root_span: Any = None
    span_ctx: Optional[Dict] = None

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for rec in self.records.values():
            out[rec["status"]] = out.get(rec["status"], 0) + 1
        return out

    def remaining(self) -> int:
        return sum(1 for rec in self.records.values()
                   if rec["status"] not in _TERMINAL)

    def snapshot(self) -> Dict:
        """JSON-ready summary (no payloads)."""
        return {
            "id": self.id, "tenant": self.tenant,
            "priority": self.priority, "label": self.label,
            "status": self.status, "submitted": self.submitted,
            "started": self.started, "finished": self.finished,
            "total": len(self.points), "counts": self.counts(),
            "remaining": self.remaining(),
            "ledger": str(self.ledger.path) if self.ledger else None,
        }


class _WorkerPool(ParallelEngine):
    """The engine's process mechanics (context, poll-one worker,
    slot count) reused verbatim; the scheduler never calls ``run``."""


class Scheduler:
    """A long-running job queue over one shared worker pool."""

    def __init__(self, workers: Optional[int] = None,
                 timeout: Optional[float] = None,
                 quotas: Optional[Dict[str, int]] = None,
                 default_quota: Optional[int] = None,
                 state_dir: Optional[os.PathLike] = None,
                 store: Optional[SqliteStore] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 functional_mode: Optional[str] = None) -> None:
        # Functional engine for the pool's profiling/fast-forward
        # passes: workers inherit REPRO_FUNCTIONAL_MODE through
        # repro_env(), so exporting it here wires every forked point.
        self.functional_mode = resolve_functional_mode(functional_mode)
        if functional_mode is not None:
            os.environ["REPRO_FUNCTIONAL_MODE"] = self.functional_mode
        self._pool = _WorkerPool(workers=workers, timeout=timeout)
        self.workers = self._pool.workers
        self.timeout = timeout
        self.quotas = dict(quotas or {})
        #: Slots a tenant without an explicit quota may hold at once.
        self.default_quota = default_quota or self.workers
        self.state_dir = Path(state_dir) if state_dir is not None \
            else None
        if self.state_dir is not None:
            (self.state_dir / "ledgers").mkdir(parents=True,
                                               exist_ok=True)
        self.store = store
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self.id = f"sched-{uuid.uuid4().hex[:8]}"

        self._jobs: Dict[str, Job] = {}
        self._seq = 0
        #: proc -> (job, idx, point, started, conn).
        self._live: Dict[Any, Tuple[Job, int, Point, float, Any]] = {}
        #: cache keys currently executing (or claimed) here.
        self._inflight: Dict[str, Tuple[str, int]] = {}
        self._lock = threading.RLock()
        self._wake = threading.Event()
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_wait_check = 0.0
        self._wait_data_version: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Scheduler":
        """Start the scheduling thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._pump, name="repro-scheduler", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Terminate live workers, finish ledgers, join the thread."""
        self._stopping.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        with self._lock:
            live = dict(self._live)
            self._live.clear()
        # Reap outside the lock: join() blocks for as long as the
        # child takes to die, and nothing else can reach these
        # entries now that they are out of _live.
        for proc, (_job, _idx, _pt, _t0, conn) in live.items():
            proc.terminate()
            proc.join()
            conn.close()
        with self._lock:
            for job, idx, pt, _t0, _conn in live.values():
                rec = job.records[idx]
                if rec["status"] == "running":
                    rec["status"] = "cancelled"
                    rec["error"] = "scheduler stopped"
                if pt.cacheable:
                    self._inflight.pop(pt.cache_key(), None)
                    if self.store is not None:
                        self.store.release(pt.cache_key(),
                                           owner=self.id)
            for job in self._jobs.values():
                if job.status in ("queued", "running"):
                    self._finish_job(job, status="cancelled",
                                     note="scheduler stopped")

    def __enter__(self) -> "Scheduler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- submission & queries ----------------------------------------------

    def submit(self, points, tenant: str = "anon", priority: int = 0,
               label: str = "") -> str:
        """Queue one job; returns its id.

        Store hits are resolved here — before any scheduling — so a
        fully-cached submission completes without touching the pool.
        """
        pts = unique_points(points)
        if not pts:
            raise ValueError("job has no points")
        with self._lock:
            self._seq += 1
            job = Job(id=uuid.uuid4().hex[:12], tenant=tenant,
                      priority=int(priority), label=label, points=pts,
                      submitted=time.time(), seq=self._seq)
            job.spans = SpanTracer()
            if self.state_dir is not None:
                job.ledger = RunLedger(
                    self.state_dir / "ledgers" / f"job-{job.id}.jsonl",
                    run_id=job.id, command=label or "submit",
                    config_hash=source_hash())
                job.ledger.run_start(
                    total=len(pts), workers=self.workers,
                    trace_id=job.spans.trace_id, tenant=tenant,
                    priority=job.priority)
            job.root_span = job.spans.begin(
                "job", tenant=tenant, priority=job.priority,
                label=label)
            job.span_ctx = job.spans.context()
            for idx, pt in enumerate(pts):
                job.records[idx] = self._record(idx, pt)
            self._jobs[job.id] = job
            self.metrics.inc("service.jobs.submitted")
            if self.store is not None:
                self.store.audit(
                    "submit", key=job.id, actor=tenant,
                    source_hash=source_hash(),
                    detail={"points": len(pts),
                            "priority": job.priority, "label": label})
            # Resolve store hits before anything is scheduled.
            for idx, pt in enumerate(pts):
                if pt.cacheable:
                    payload = pt.load_cached()
                    if payload is not None:
                        self._resolve(job, idx, "cached",
                                      payload=payload)
            self._maybe_finish_job(job)
        self._wake.set()
        return job.id

    @staticmethod
    def _record(idx: int, pt: Point) -> Dict:
        return {"idx": idx, "key": pt.cache_key(), "label": pt.label,
                "point": pt.to_dict(), "status": "queued",
                "payload": None, "error": "", "elapsed": 0.0}

    def cancel(self, job_id: str) -> bool:
        """Cancel a job: queued points never run; running points are
        terminated unless another job shares them."""
        to_reap: List[Tuple[Any, Any]] = []
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.status in ("done", "failed",
                                             "cancelled"):
                return False
            for rec in job.records.values():
                if rec["status"] in ("queued", "waiting"):
                    self._resolve(job, rec["idx"], "cancelled",
                                  error="job cancelled")
            for proc in list(self._live):
                ljob, idx, pt, _started, conn = self._live[proc]
                if ljob is not job:
                    continue
                key = pt.cache_key() if pt.cacheable else None
                if key is not None and self._has_followers(job, key):
                    # Another job awaits the same point; let the
                    # worker finish for them.
                    job.records[idx]["status"] = "cancelled"
                    job.records[idx]["error"] = "job cancelled"
                    continue
                del self._live[proc]
                if key is not None:
                    self._inflight.pop(key, None)
                    if self.store is not None:
                        self.store.release(key, owner=self.id)
                self._resolve(job, idx, "cancelled",
                              error="job cancelled")
                to_reap.append((proc, conn))
            self.metrics.inc("service.jobs.cancelled")
            if self.store is not None:
                self.store.audit("cancel", key=job.id,
                                 actor=job.tenant)
            self._finish_job(job, status="cancelled")
        # Reap outside the lock: join() blocks until the child dies,
        # and the pump needs the lock to keep other jobs moving.  The
        # pump may be inside mp_connection.wait() on a conn we close
        # here; it tolerates the resulting OSError and re-snapshots.
        for proc, conn in to_reap:
            proc.terminate()
            proc.join()
            conn.close()
        self._wake.set()
        return True

    def job(self, job_id: str) -> Optional[Dict]:
        with self._lock:
            job = self._jobs.get(job_id)
            return job.snapshot() if job is not None else None

    def jobs(self) -> List[Dict]:
        with self._lock:
            return [j.snapshot() for j in
                    sorted(self._jobs.values(), key=lambda j: j.seq)]

    def results(self, job_id: str) -> Optional[List[Dict]]:
        """Per-point records (payload included), submission order."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            return [dict(job.records[idx])
                    for idx in sorted(job.records)]

    # -- the pump ----------------------------------------------------------

    def _pump(self) -> None:
        while not self._stopping.is_set():
            self._schedule()
            with self._lock:
                conns = [conn for *_ , conn in self._live.values()]
            if conns:
                try:
                    mp_connection.wait(conns, timeout=0.05)
                except OSError:
                    pass  # a cancel closed a pipe mid-wait; re-snapshot

            else:
                self._wake.wait(0.05)
                self._wake.clear()
            self._poll()
            self._check_waiting()

    def _quota(self, tenant: str) -> int:
        return self.quotas.get(tenant, self.default_quota)

    def _schedule(self) -> None:
        """Fill free worker slots: priority order, quota-capped."""
        with self._lock:
            if len(self._live) >= self.workers:
                return
            held: Dict[str, int] = {}
            for job, *_ in self._live.values():
                held[job.tenant] = held.get(job.tenant, 0) + 1
            for job in sorted(self._jobs.values(),
                              key=lambda j: (-j.priority, j.seq)):
                if job.status not in ("queued", "running"):
                    continue
                if held.get(job.tenant, 0) >= self._quota(job.tenant):
                    continue
                for idx in sorted(job.records):
                    rec = job.records[idx]
                    if rec["status"] != "queued":
                        continue
                    if len(self._live) >= self.workers:
                        return
                    if held.get(job.tenant, 0) >= \
                            self._quota(job.tenant):
                        break
                    pt = job.points[idx]
                    key = pt.cache_key() if pt.cacheable else None
                    if key is not None:
                        if key in self._inflight:
                            # Shares an execution already under way;
                            # resolved with it in _finish_point.
                            continue
                        if (self.store is not None
                                and not self.store.claim(
                                    key, owner=self.id)):
                            # Another process owns the point; poll
                            # the store for its result instead.
                            rec["status"] = "waiting"
                            continue
                    self._start_worker(job, idx, pt)
                    held[job.tenant] = held.get(job.tenant, 0) + 1

    def _start_worker(self, job: Job, idx: int, pt: Point) -> None:
        rec = job.records[idx]
        rec["status"] = "running"
        rec["t0"] = time.monotonic()
        if job.status == "queued":
            job.status = "running"
            job.started = time.time()
        if job.ledger is not None:
            job.ledger.point_start(rec["key"], pt.label)
        recv, send = self._pool._ctx.Pipe(duplex=False)
        proc = self._pool._ctx.Process(
            target=_worker_main,
            args=(send, pt, True, repro_env(), job.span_ctx),
            daemon=True)
        proc.start()
        send.close()
        self._live[proc] = (job, idx, pt, time.monotonic(), recv)
        if pt.cacheable:
            self._inflight[pt.cache_key()] = (job.id, idx)
        self.metrics.inc("service.points.started")

    def _poll(self) -> None:
        now = time.monotonic()
        with self._lock:
            for proc in list(self._live):
                job, idx, pt, started, conn = self._live[proc]
                outcome = self._pool._poll_one(proc, pt, started,
                                               conn, now)
                if outcome is None:
                    continue
                del self._live[proc]
                conn.close()
                self._finish_point(job, idx, pt, outcome)

    #: Seconds between waiting-point polls for stores without change
    #: detection (FileStore).
    wait_poll_interval = 0.25
    #: Unconditional re-poll period when the store *does* expose
    #: ``data_version()``: a crashed owner's claim going stale and
    #: publishes through our own connection bump no version, so a
    #: slow timed sweep still has to catch them.
    wait_poll_fallback = 1.0

    def _check_waiting(self) -> None:
        """Poll the store for points claimed by another process, and
        retry their claims (the owner may have failed and released).

        With a sqlite store this is change-driven: ``PRAGMA
        data_version`` bumps whenever another connection commits, so
        the expensive per-point sweep runs only when a foreign writer
        actually landed something (or on the slow fallback tick).
        """
        if self.store is None:
            return
        now = time.monotonic()
        data_version = getattr(self.store, "data_version", None)
        if data_version is not None:
            version = data_version()
            if version != self._wait_data_version:
                self._wait_data_version = version
            elif now - self._last_wait_check < self.wait_poll_fallback:
                return
        elif now - self._last_wait_check < self.wait_poll_interval:
            return
        self._last_wait_check = now
        with self._lock:
            for job in self._jobs.values():
                if job.status not in ("queued", "running"):
                    continue
                for idx in sorted(job.records):
                    rec = job.records[idx]
                    if rec["status"] != "waiting":
                        continue
                    pt = job.points[idx]
                    payload = pt.load_cached()
                    if payload is not None:
                        self._resolve(job, idx, "cached",
                                      payload=payload)
                        self._maybe_finish_job(job)
                    elif self.store.claim(rec["key"], owner=self.id):
                        rec["status"] = "queued"

    # -- resolution --------------------------------------------------------

    def _finish_point(self, job: Job, idx: int, pt: Point,
                      outcome: PointOutcome) -> None:
        key = pt.cache_key() if pt.cacheable else None
        if key is not None:
            self._inflight.pop(key, None)
            if self.store is not None:
                self.store.release(key, owner=self.id)
        rec = job.records[idx]
        if rec["status"] != "cancelled":
            self._resolve(job, idx, outcome.status,
                          payload=outcome.payload, error=outcome.error,
                          elapsed=outcome.elapsed,
                          rusage=outcome.rusage, spans=outcome.spans)
        # Any other job queued behind this execution shares the
        # payload (or retries on failure, by staying queued).
        if key is not None and outcome.status == "done" \
                and outcome.payload is not None:
            for other in self._jobs.values():
                if other is job:
                    continue
                for oidx in sorted(other.records):
                    orec = other.records[oidx]
                    if (orec["status"] in ("queued", "waiting")
                            and orec["key"] == key):
                        self._resolve(other, oidx, "cached",
                                      payload=outcome.payload)
                self._maybe_finish_job(other)
        self._maybe_finish_job(job)

    def _has_followers(self, job: Job, key: str) -> bool:
        for other in self._jobs.values():
            if other is job or other.status not in ("queued",
                                                    "running"):
                continue
            for rec in other.records.values():
                if rec["key"] == key and rec["status"] in (
                        "queued", "waiting"):
                    return True
        return False

    def _resolve(self, job: Job, idx: int, status: str,
                 payload: Optional[dict] = None, error: str = "",
                 elapsed: float = 0.0,
                 rusage: Optional[dict] = None,
                 spans: Optional[List[dict]] = None) -> None:
        """The single bookkeeping path for a point reaching a
        terminal status: record, metrics, ledger, span synthesis."""
        rec = job.records[idx]
        if "t0" in rec:
            elapsed = elapsed or (time.monotonic() - rec.pop("t0"))
        rec.update(status=status, payload=payload, error=error,
                   elapsed=elapsed)
        self.metrics.inc(f"service.points.{status}")
        if status == "done" and payload is not None:
            # Adaptive-sampling rollup: points execute in worker
            # processes, so the convergence counters ride back in the
            # payload and aggregate here into the service registry
            # (surfaced by /metrics).
            rounds = payload.get("sample_rse_rounds", 0)
            if rounds:
                self.metrics.inc("sampling.rse_rounds", rounds)
                self.metrics.inc(
                    "sampling.intervals_added",
                    payload.get("sample_intervals_added", 0))
        if job.spans is not None and not spans:
            end_t = time.time()
            job.spans.record(
                "point", end_t - elapsed, end_t,
                status=_SPAN_STATUS.get(status, status),
                key=rec["key"], label=rec["label"])
        if job.ledger is not None:
            cache = {"cached": "hit", "done": "miss"}.get(status)
            job.ledger.point(
                key=rec["key"], status=status, point=rec["point"],
                payload=payload, error=error, elapsed=elapsed,
                cache=cache, rusage=rusage,
                spans=(spans or []) + job.spans.drain())

    def _maybe_finish_job(self, job: Job) -> None:
        if job.status in ("done", "failed", "cancelled"):
            return
        if job.remaining():
            return
        counts = job.counts()
        bad = counts.get("failed", 0) + counts.get("timeout", 0)
        self._finish_job(job,
                         status="failed" if bad else "done")
        self.metrics.inc(
            f"service.jobs.{'failed' if bad else 'done'}")

    def _finish_job(self, job: Job, status: str,
                    note: str = "") -> None:
        if job.finished is not None:
            return
        job.status = status
        job.finished = time.time()
        if job.spans is not None:
            job.spans.end(job.root_span, status=status,
                          **{f"points.{k}": v
                             for k, v in job.counts().items()})
        if job.ledger is not None:
            job.ledger.run_end(
                status={"done": "ok"}.get(status, status),
                counts=job.counts(),
                elapsed=job.finished - job.submitted,
                spans=job.spans.drain() if job.spans else [])
            job.ledger.close()
