"""The client layer: a thin ``urllib`` wrapper over the service API.

``repro submit`` / ``repro jobs`` / ``repro fetch`` are built on
:class:`ServiceClient`; tests drive the live server through it too, so
the CLI and the test-suite exercise the same wire format.  Transport
and HTTP-status failures both surface as :class:`ServiceError` with
the server's own message where one was sent.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional
from urllib import error as urlerror
from urllib import request as urlrequest

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A request the service refused (or never answered)."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """JSON client for one ``repro serve`` endpoint."""

    def __init__(self, url: str, timeout: float = 10.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(self, path: str, payload: Optional[dict] = None,
                 method: Optional[str] = None) -> dict:
        req = urlrequest.Request(
            self.url + path,
            data=(json.dumps(payload).encode()
                  if payload is not None else None),
            headers={"Content-Type": "application/json"},
            method=method or ("POST" if payload is not None else "GET"))
        try:
            with urlrequest.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read() or b"{}")
        except urlerror.HTTPError as exc:
            try:
                detail = json.loads(exc.read() or b"{}").get("error")
            except ValueError:
                detail = None
            raise ServiceError(
                detail or f"{exc.code} {exc.reason}",
                status=exc.code) from None
        except urlerror.URLError as exc:
            raise ServiceError(
                f"cannot reach {self.url}: {exc.reason}") from None

    # -- API ---------------------------------------------------------------

    def health(self) -> dict:
        return self._request("/health")

    def submit(self, points: List[dict], tenant: str = "anon",
               priority: int = 0, label: str = "") -> str:
        """Submit point dicts (``Point.to_dict`` form); returns the
        job id."""
        out = self._request("/v1/jobs", payload={
            "points": points, "tenant": tenant,
            "priority": priority, "label": label})
        return out["id"]

    def jobs(self) -> List[dict]:
        return self._request("/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request(f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> bool:
        return bool(self._request(f"/v1/jobs/{job_id}/cancel",
                                  payload={})["cancelled"])

    def results(self, job_id: str) -> List[dict]:
        return self._request(f"/v1/jobs/{job_id}/results")["records"]

    def metrics(self) -> Dict[str, float]:
        return self._request("/v1/metrics")["counters"]

    def store(self) -> dict:
        return self._request("/v1/store")

    def stream(self, job_id: str) -> Iterator[dict]:
        """Yield snapshot dicts from the chunked JSONL stream until
        the job reaches a terminal status."""
        req = urlrequest.Request(self.url + f"/v1/jobs/{job_id}/stream")
        try:
            with urlrequest.urlopen(req, timeout=self.timeout) as resp:
                for line in resp:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except urlerror.HTTPError as exc:
            raise ServiceError(f"{exc.code} {exc.reason}",
                               status=exc.code) from None
        except urlerror.URLError as exc:
            raise ServiceError(
                f"cannot reach {self.url}: {exc.reason}") from None

    def wait(self, job_id: str, poll: float = 0.2,
             timeout: Optional[float] = None) -> dict:
        """Poll until the job is terminal; returns the final snapshot."""
        import time
        t0 = time.monotonic()
        while True:
            snap = self.job(job_id)
            if snap["status"] in ("done", "failed", "cancelled"):
                return snap
            if (timeout is not None
                    and time.monotonic() - t0 > timeout):
                raise ServiceError(
                    f"job {job_id} still {snap['status']} after "
                    f"{timeout:g}s")
            time.sleep(poll)
