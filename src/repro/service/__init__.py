"""Simulation-as-a-service: the layers that turn the experiment
engine into a long-running, multi-client system.

* :mod:`repro.service.scheduler` — a job queue in front of a shared
  worker pool: sweep-plan submissions with priorities and per-tenant
  quotas, store-hit resolution before any fork, in-flight dedupe, and
  the engine's crash/timeout isolation.
* :mod:`repro.service.server` — a stdlib ``http.server`` JSON API
  (``repro serve``): submit/status/cancel/results/stream, backed by
  the scheduler and the sqlite result store, writing one run ledger
  per job so ``repro top`` and ``repro report`` work unchanged.
* :mod:`repro.service.client` — the thin ``urllib`` client the
  ``repro submit``/``jobs``/``fetch`` subcommands are built on.

The CLI is one client of the API; the engine is a library underneath
the scheduler; results live in the repository layer
(:mod:`repro.experiments.store`).
"""

from .scheduler import Job, Scheduler
from .client import ServiceClient, ServiceError

__all__ = ["Job", "Scheduler", "ServiceClient", "ServiceError"]
