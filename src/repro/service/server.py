"""The API layer: a stdlib ``http.server`` JSON API over the
scheduler.

``repro serve`` builds a :class:`ServiceServer` — a threading HTTP
server in front of one :class:`~repro.service.scheduler.Scheduler` —
and blocks in :meth:`ServiceServer.serve_forever`.  The surface is
deliberately small and entirely JSON:

================================  =====================================
``GET  /health``                  liveness + scheduler identity
``POST /v1/jobs``                 submit a job (point dicts, tenant,
                                  priority, label) → ``{"id": ...}``
``GET  /v1/jobs``                 every job's snapshot
``GET  /v1/jobs/<id>``            one job's snapshot
``POST /v1/jobs/<id>/cancel``     cancel → ``{"cancelled": bool}``
``GET  /v1/jobs/<id>/results``    per-point records, payloads included
``GET  /v1/jobs/<id>/stream``     chunked JSONL snapshots until the
                                  job reaches a terminal status
``GET  /v1/metrics``              the scheduler's ``service.*`` counters
``GET  /v1/store``                store stats + recent audit rows
================================  =====================================

Submitted points travel as :meth:`~repro.experiments.plan.Point.to_dict`
dicts and are rebuilt with ``Point.from_dict``, so a service job is
indistinguishable from a local sweep at the repository layer: same
cache keys, same payload bytes, same ledger envelopes (``repro top``
and ``repro report`` render the per-job ledgers unchanged).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.experiments.plan import Point

from .scheduler import Scheduler

__all__ = ["ServiceServer"]

#: Cap on request bodies — a sweep plan is small; anything bigger is
#: a client bug, not a job.
_MAX_BODY = 8 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """One request; the scheduler lives on ``self.server``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: D102 - quiet by default
        if self.server.verbose:  # type: ignore[attr-defined]
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    def _json(self, payload, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._json({"error": message}, status=status)

    def _body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            self._error(413, "request body too large")
            return None
        try:
            data = json.loads(self.rfile.read(length) or b"{}")
        except ValueError:
            self._error(400, "request body is not JSON")
            return None
        if not isinstance(data, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return data

    @property
    def sched(self) -> Scheduler:
        return self.server.scheduler  # type: ignore[attr-defined]

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.rstrip("/")
        if path == "/health":
            self._json({"ok": True, "id": self.sched.id,
                        "workers": self.sched.workers,
                        "jobs": len(self.sched.jobs())})
        elif path == "/v1/jobs":
            self._json({"jobs": self.sched.jobs()})
        elif path == "/v1/metrics":
            self._json({"counters": dict(self.sched.metrics.counters)})
        elif path == "/v1/store":
            self._store()
        elif path.startswith("/v1/jobs/"):
            job_id, _, verb = path[len("/v1/jobs/"):].partition("/")
            if verb == "":
                self._job(job_id)
            elif verb == "results":
                self._results(job_id)
            elif verb == "stream":
                self._stream(job_id)
            else:
                self._error(404, f"unknown job view {verb!r}")
        else:
            self._error(404, f"no route for GET {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.rstrip("/")
        if path == "/v1/jobs":
            self._submit()
        elif path.startswith("/v1/jobs/") and path.endswith("/cancel"):
            job_id = path[len("/v1/jobs/"):-len("/cancel")]
            self._json({"cancelled": self.sched.cancel(job_id)})
        else:
            self._error(404, f"no route for POST {self.path}")

    # -- handlers ----------------------------------------------------------

    def _submit(self) -> None:
        data = self._body()
        if data is None:
            return
        raw = data.get("points")
        if not isinstance(raw, list) or not raw:
            self._error(400, "'points' must be a non-empty list")
            return
        try:
            points = [Point.from_dict(d) for d in raw]
        except (KeyError, TypeError, ValueError) as exc:
            self._error(400, f"bad point: {exc}")
            return
        try:
            job_id = self.sched.submit(
                points, tenant=str(data.get("tenant") or "anon"),
                priority=int(data.get("priority") or 0),
                label=str(data.get("label") or ""))
        except ValueError as exc:
            self._error(400, str(exc))
            return
        self._json({"id": job_id}, status=201)

    def _job(self, job_id: str) -> None:
        snap = self.sched.job(job_id)
        if snap is None:
            self._error(404, f"no job {job_id!r}")
        else:
            self._json(snap)

    def _results(self, job_id: str) -> None:
        records = self.sched.results(job_id)
        if records is None:
            self._error(404, f"no job {job_id!r}")
        else:
            self._json({"id": job_id, "records": records})

    def _stream(self, job_id: str) -> None:
        """Chunked JSONL: one snapshot line per tick until terminal."""
        if self.sched.job(job_id) is None:
            self._error(404, f"no job {job_id!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/jsonl")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def chunk(line: str) -> None:
            data = (line + "\n").encode()
            self.wfile.write(b"%x\r\n%s\r\n" % (len(data), data))

        try:
            while True:
                snap = self.sched.job(job_id)
                chunk(json.dumps(snap))
                if snap is None or snap["status"] in (
                        "done", "failed", "cancelled"):
                    break
                time.sleep(self.server.stream_interval)  # type: ignore[attr-defined]
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up

    def _store(self) -> None:
        store = self.sched.store
        if store is None:
            self._json({"attached": False})
            return
        self._json({"attached": True, "stats": store.stats(),
                    "audit": store.audit_rows(limit=50)})


class ServiceServer:
    """The HTTP front of one scheduler; owns neither the store nor
    the scheduler's lifetime (the CLI composes and closes them)."""

    def __init__(self, scheduler: Scheduler, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False,
                 stream_interval: float = 0.2) -> None:
        self.scheduler = scheduler
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.scheduler = scheduler  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.stream_interval = stream_interval  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (the OS picks port for 0)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Block serving requests (the ``repro serve`` foreground)."""
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "ServiceServer":
        """Serve on a background thread (tests, embedded use)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever, name="repro-serve",
                daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
