"""repro — a reproduction of *How to Fake 1000 Registers* (MICRO 2005).

The package implements the Virtual Context Architecture (VCA): an
out-of-order processor whose physical register file is managed as a
cache of a memory-mapped logical register space, providing unified,
cheap support for register windows and simultaneous multithreading.

Layers (bottom-up):

* :mod:`repro.isa` / :mod:`repro.asm` — the VRISC ISA, program builder
  and the flat/windowed ABI lowerings.
* :mod:`repro.functional` — instruction-accurate interpreter (golden
  model, path-length measurement).
* :mod:`repro.mem`, :mod:`repro.frontend` — cache hierarchy with port
  arbitration; branch prediction.
* :mod:`repro.rename` — conventional renaming plus the paper's
  contribution: the VCA rename engine, physical-register state machine,
  RSID translation table and ASTQ.
* :mod:`repro.windows` — conventional (trap-based) and ideal
  register-window machines used as comparison points.
* :mod:`repro.pipeline` / :mod:`repro.models` — the cycle-level
  out-of-order core and the four machine models of the paper.
* :mod:`repro.workloads` — synthetic SPEC-like benchmark suite and the
  SMT workload-clustering methodology.
* :mod:`repro.analysis` — metrics (weighted speedup, weighted cache
  accesses) and result tables.
"""

from repro.config import CacheConfig, MachineConfig, RenameModel, WindowModel

__version__ = "1.0.0"

__all__ = [
    "CacheConfig", "MachineConfig", "RenameModel", "WindowModel",
    "__version__",
]
