"""Declarative sweep plans: a sweep is data, not a loop.

Every figure in the paper is a sweep over (machine model, physical
register count, cache ports, workload).  Instead of hand-rolled nested
loops, a sweep is described by a :class:`SweepSpec` — named axes over
a base parameter set, plus optional extra points and a reduction — and
expands to hashable, serializable :class:`Point` values.  Because a
plan is inert data, an execution engine (``repro.experiments.engine``)
can dedupe, cache-resolve, parallelise, journal and resume it without
knowing what the points compute.

Point kinds:

* ``run`` — one timing-simulation configuration (the unit of every
  figure); executes through :func:`repro.experiments.runner.run_point`
  and decodes to a :class:`~repro.experiments.runner.RunResult`.
* ``path_ratio`` — the functional windowed/flat path-length
  measurement of one benchmark (Table 2); decodes to a float.
* ``probe`` — a diagnostic that reports the executing worker's
  ``REPRO_*`` environment, resolved cache directory, default scale and
  pid.  Never cached or resumed; used to verify that workers run with
  the environment the parent intended.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence,
    Tuple,
)

from . import runner as _runner

#: The point kinds understood by :meth:`Point.execute`.
RUN = "run"
PATH_RATIO = "path_ratio"
PROBE = "probe"


@dataclass(frozen=True)
class Point:
    """One unit of schedulable work, named by its parameters.

    Frozen and hashable: two points with equal parameters are the same
    point, which is what lets engines dedupe work and callers index an
    engine's outcome map by reconstructing the point.
    """

    kind: str = RUN
    model: str = "baseline"
    benches: Tuple[str, ...] = ()
    phys_regs: int = 256
    dl1_ports: int = 2
    scale: float = 1.0
    #: ``path_ratio`` benchmark name, or ``probe`` label.
    bench: str = ""
    #: Checkpointed sampled simulation (``repro.sampling``); the
    #: ``sample_*`` parameters are identity-bearing only when
    #: ``sample`` is set, keeping historical full-detail cache keys
    #: bit-identical.
    sample: bool = False
    sample_interval: int = 2000
    sample_count: int = 8
    sample_mode: str = "systematic"
    #: Adaptive convergence control (``rse_target``); identity-bearing
    #: only when ``sample_rse`` is set, so previously-sampled keys stay
    #: untouched too.  ``sample_mem_weight`` joins the key only under
    #: ``sample_mode == "bbv+mem"``, the only mode that reads it.
    sample_rse: Optional[float] = None
    sample_rse_metrics: Tuple[str, ...] = ()
    sample_max: int = 64
    sample_mem_weight: float = 0.5

    # -- constructors ------------------------------------------------------
    @classmethod
    def run(cls, model: str, benches: Sequence[str], phys_regs: int,
            dl1_ports: int = 2, scale: float = 1.0) -> "Point":
        """A timing-simulation point (one per hardware thread in
        ``benches``)."""
        return cls(kind=RUN, model=model, benches=tuple(benches),
                   phys_regs=phys_regs, dl1_ports=dl1_ports, scale=scale)

    @classmethod
    def ratio(cls, bench: str) -> "Point":
        """A functional path-length-ratio point for one benchmark."""
        return cls(kind=PATH_RATIO, bench=bench)

    @classmethod
    def probe(cls, label: str = "env") -> "Point":
        """A worker-environment diagnostic point."""
        return cls(kind=PROBE, bench=label)

    # -- identity ----------------------------------------------------------
    @property
    def cacheable(self) -> bool:
        """Whether the point's payload may be cache/journal-resolved."""
        return self.kind != PROBE

    def cache_key(self) -> str:
        """The runner's content-addressed cache key for this point.

        ``run`` and ``path_ratio`` keys are bit-identical to the keys
        :func:`~repro.experiments.runner.run_point` and
        :func:`~repro.experiments.runner.path_ratio` have always used,
        so pre-plan caches stay valid.
        """
        if self.kind == RUN:
            params = dict(
                model=self.model, benches=self.benches,
                phys_regs=self.phys_regs, dl1_ports=self.dl1_ports,
                scale=self.scale)
            if self.sample:
                params.update(sample=True,
                              sample_interval=self.sample_interval,
                              sample_count=self.sample_count,
                              sample_mode=self.sample_mode)
                if self.sample_mode == "bbv+mem":
                    params.update(
                        sample_mem_weight=self.sample_mem_weight)
                if self.sample_rse is not None:
                    params.update(
                        sample_rse=self.sample_rse,
                        sample_rse_metrics=self.sample_rse_metrics,
                        sample_max=self.sample_max)
            return _runner._cache_key(**params)
        if self.kind == PATH_RATIO:
            return _runner._cache_key(kind=PATH_RATIO, bench=self.bench)
        return f"probe-{self.bench}"

    @property
    def label(self) -> str:
        """Compact human-readable name for progress lines and CSVs."""
        if self.kind == RUN:
            tag = "~s" if self.sample else ""
            return (f"{self.model}/{'+'.join(self.benches)}"
                    f"@{self.phys_regs}r{self.dl1_ports}p{tag}")
        if self.kind == PATH_RATIO:
            return f"ratio/{self.bench}"
        return f"probe/{self.bench}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for journals and worker pipes (round-trips
        through :meth:`from_dict`)."""
        return {"kind": self.kind, "model": self.model,
                "benches": list(self.benches),
                "phys_regs": self.phys_regs,
                "dl1_ports": self.dl1_ports, "scale": self.scale,
                "bench": self.bench, "sample": self.sample,
                "sample_interval": self.sample_interval,
                "sample_count": self.sample_count,
                "sample_mode": self.sample_mode,
                "sample_rse": self.sample_rse,
                "sample_rse_metrics": list(self.sample_rse_metrics),
                "sample_max": self.sample_max,
                "sample_mem_weight": self.sample_mem_weight}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Point":
        """Inverse of :meth:`to_dict`; equal parameters reconstruct
        an equal (and equally hashable) point.  The ``sample``
        parameters default when absent so pre-sampling journals still
        replay."""
        return cls(kind=d["kind"], model=d["model"],
                   benches=tuple(d["benches"]),
                   phys_regs=d["phys_regs"], dl1_ports=d["dl1_ports"],
                   scale=d["scale"], bench=d["bench"],
                   sample=d.get("sample", False),
                   sample_interval=d.get("sample_interval", 2000),
                   sample_count=d.get("sample_count", 8),
                   sample_mode=d.get("sample_mode", "systematic"),
                   sample_rse=d.get("sample_rse"),
                   sample_rse_metrics=tuple(
                       d.get("sample_rse_metrics", ())),
                   sample_max=d.get("sample_max", 64),
                   sample_mem_weight=d.get("sample_mem_weight", 0.5))

    # -- execution ---------------------------------------------------------
    def load_cached(self) -> Optional[dict]:
        """The point's cached payload, or ``None`` on any kind of miss
        (missing, corrupt, or schema-mismatched entries)."""
        if not self.cacheable:
            return None
        payload = _runner._cache_load(self.cache_key())
        if payload is None:
            return None
        try:
            self.decode(payload)
        except (TypeError, ValueError, KeyError):
            return None
        return payload

    def execute(self, use_cache: bool = True) -> dict:
        """Compute the point and return its JSON-serializable payload
        (what the cache and the engine journal store)."""
        if self.kind == RUN:
            import json
            from dataclasses import asdict
            # Sample parameters are passed only when set, mirroring
            # the cache-key gating: full-detail points call run_point
            # exactly as they always have.
            sample_kwargs = dict(
                sample=True, sample_interval=self.sample_interval,
                sample_count=self.sample_count,
                sample_mode=self.sample_mode,
                sample_rse=self.sample_rse,
                sample_rse_metrics=self.sample_rse_metrics,
                sample_max=self.sample_max,
                sample_mem_weight=self.sample_mem_weight,
            ) if self.sample else {}
            result = _runner.run_point(
                self.model, self.benches, self.phys_regs,
                dl1_ports=self.dl1_ports, scale=self.scale,
                use_cache=use_cache, **sample_kwargs)
            # Canonical JSON form, so a payload compares equal no
            # matter whether it was executed, cache-loaded, piped from
            # a worker, or replayed from a journal.
            return json.loads(json.dumps(asdict(result)))
        if self.kind == PATH_RATIO:
            return {"ratio": _runner.path_ratio(self.bench,
                                                use_cache=use_cache)}
        if self.kind == PROBE:
            return {
                "env": {k: v for k, v in sorted(os.environ.items())
                        if k.startswith("REPRO_")},
                "cache_dir": str(_runner.cache_dir()),
                "scale": _runner.default_scale(),
                "pid": os.getpid(),
            }
        raise ValueError(f"unknown point kind {self.kind!r}")

    def decode(self, payload: Mapping[str, Any]) -> Any:
        """Turn a stored payload back into the point's natural value
        (``RunResult``, float ratio, or the probe dict)."""
        if self.kind == RUN:
            return _runner.result_from_dict(dict(payload))
        if self.kind == PATH_RATIO:
            ratio = payload["ratio"]
            if not isinstance(ratio, float):
                raise TypeError(f"bad ratio payload: {payload!r}")
            return ratio
        return dict(payload)


def unique_points(points: Iterable[Point]) -> List[Point]:
    """Points deduplicated by parameter equality, order preserved —
    sweeps whose axes overlap (e.g. a grid plus its normalisation
    references) schedule shared work once."""
    return list(dict.fromkeys(points))


def point_from_params(**params: Any) -> Point:
    """Build a :class:`Point` from flat axis/base parameters.

    Understands the axis spellings plans use: ``bench`` (a single
    benchmark → one-thread ``benches``) and ``benches``/``workload``
    (a multi-thread tuple).  Unknown names raise ``TypeError`` so a
    typo in an axis name fails at plan expansion, not mid-sweep.
    """
    params = dict(params)
    kind = params.pop("kind", RUN)
    if kind == RUN:
        if "workload" in params:
            params["benches"] = params.pop("workload")
        if "bench" in params:
            if "benches" in params:
                raise TypeError("give either 'bench' or 'benches'")
            params["benches"] = (params.pop("bench"),)
        benches = tuple(params.pop("benches", ()))
        if "sample_rse_metrics" in params:
            params["sample_rse_metrics"] = tuple(
                params["sample_rse_metrics"])
        allowed = {"model", "phys_regs", "dl1_ports", "scale",
                   "sample", "sample_interval", "sample_count",
                   "sample_mode", "sample_rse", "sample_rse_metrics",
                   "sample_max", "sample_mem_weight"}
        unknown = set(params) - allowed
        if unknown:
            raise TypeError(f"unknown run-point parameters: "
                            f"{sorted(unknown)}")
        return Point(kind=RUN, benches=benches, **params)
    if kind == PATH_RATIO:
        bench = params.pop("bench")
        if params:
            raise TypeError(f"unknown path-ratio parameters: "
                            f"{sorted(params)}")
        return Point.ratio(bench)
    raise TypeError(f"cannot build points of kind {kind!r} from axes")


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: the cartesian product of ``axes`` over
    ``base`` parameters, plus ``extra`` points, with an optional
    ``reduce`` from the engine's outcome map to the sweep's value
    (a figure series, a table, ...).

    Build with :meth:`SweepSpec.build`; expand with :meth:`points`.
    """

    name: str
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    base: Tuple[Tuple[str, Any], ...] = ()
    extra: Tuple[Point, ...] = ()
    reduce: Optional[Callable[[Dict[Point, Any]], Any]] = field(
        default=None, compare=False)

    @classmethod
    def build(cls, name: str,
              axes: Optional[Mapping[str, Iterable[Any]]] = None,
              extra: Iterable[Point] = (),
              reduce: Optional[Callable] = None,
              **base: Any) -> "SweepSpec":
        """Convenience constructor from plain mappings.

        ``axes`` maps axis name → iterable of values (expanded
        last-axis-fastest); remaining keyword arguments become the
        ``base`` parameters shared by every point; ``extra`` points
        are appended verbatim (e.g. normalisation references);
        ``reduce`` turns the finished ``{Point: value}`` map into the
        sweep's payload.  Empty axes are rejected here — at plan
        build time — rather than surfacing as a silently empty sweep.
        """
        axes_t = tuple((k, tuple(v)) for k, v in (axes or {}).items())
        for k, values in axes_t:
            if not values:
                raise ValueError(f"axis {k!r} is empty")
        return cls(name=name, axes=axes_t,
                   base=tuple(sorted(base.items())),
                   extra=tuple(extra), reduce=reduce)

    @property
    def size(self) -> int:
        """Number of points after expansion and deduplication."""
        return len(self.points())

    def points(self) -> List[Point]:
        """Expand to the deduplicated point list, last axis fastest."""
        pts: List[Point] = []
        if self.axes or self.base:
            names = [k for k, _ in self.axes]
            grids = [v for _, v in self.axes]
            base = dict(self.base)
            pts = [point_from_params(**{**base,
                                        **dict(zip(names, combo))})
                   for combo in itertools.product(*grids)]
        pts.extend(self.extra)
        return unique_points(pts)
