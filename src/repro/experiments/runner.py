"""Experiment execution with content-addressed result caching.

Every figure in the paper is a sweep over (machine model, physical
register count, cache ports, workload); sweeps share many points, so
results are cached keyed by the run parameters *and a hash of the
package source* — any code change invalidates stale results
automatically.  Storage itself lives in the repository layer
(:mod:`repro.experiments.store`): the historical per-key JSON file
cache by default, or a sqlite3 store (with the file cache as
read-through fallback) when ``REPRO_STORE`` is set.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import repro
from repro.config import MachineConfig
from repro.hooks import current_spans
from repro.functional import measure_path_length
from repro.models import build_machine, model_abi
from repro.rename.base import UnrunnableConfigError
from repro.workloads import build_benchmark
from repro.workloads.generator import benchmark_program

from .store import active_store

_DEFAULT_CACHE_DIR = Path(__file__).resolve().parents[3] / ".repro_cache"


def cache_dir() -> Path:
    """Result-cache directory.

    ``REPRO_CACHE_DIR`` is re-read on every call (rather than once at
    import) so engine workers — which may be spawned with a different
    environment — and tests that re-point the cache always agree with
    their environment.
    """
    return Path(os.environ.get("REPRO_CACHE_DIR", _DEFAULT_CACHE_DIR))


#: Package-relative source paths excluded from the cache-invalidation
#: hash: presentation and orchestration layers whose code cannot change
#: what a simulation computes.  Editing a CLI help string or the sweep
#: engine must not invalidate every cached simulation result.
HASH_EXCLUDE: Tuple[str, ...] = (
    "obs",
    "cli",
    "lint",
    "service",
    "experiments/report.py",
    "experiments/plan.py",
    "experiments/engine.py",
    "experiments/benchdiff.py",
    "experiments/store.py",
)

_source_hash: Optional[str] = None


def hashed_source_files() -> List[Path]:
    """The source files whose content keys the result cache."""
    root = Path(repro.__file__).parent
    out = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if any(rel == ex or rel.startswith(ex + "/") for ex in HASH_EXCLUDE):
            continue
        out.append(path)
    return out


def source_hash() -> str:
    """Hash of the semantics-bearing package sources
    (cache-invalidation key)."""
    global _source_hash
    if _source_hash is None:
        h = hashlib.sha1()
        for path in hashed_source_files():
            h.update(path.read_bytes())
        _source_hash = h.hexdigest()[:16]
    return _source_hash


@dataclass(frozen=True)
class RunResult:
    """Serializable summary of one timing-simulation run."""

    model: str
    benches: Tuple[str, ...]
    phys_regs: int
    dl1_ports: int
    scale: float
    cycles: int = 0
    committed: Tuple[int, ...] = ()
    thread_ipcs: Tuple[float, ...] = ()
    dl1_accesses: int = 0
    dl1_breakdown: Dict[str, int] = field(default_factory=dict)
    dl1_miss_rate: float = 0.0
    l2_miss_rate: float = 0.0
    mispredict_rate: float = 0.0
    spills: int = 0
    fills: int = 0
    window_overflows: int = 0
    window_underflows: int = 0
    rsid_flushes: int = 0
    stats_vector: Tuple[float, ...] = ()
    unrunnable: bool = False
    # Sampled-simulation metadata (``repro.sampling``); defaults keep
    # pre-sampling cache entries and journals decodable.
    sampled: bool = False
    sample_intervals: int = 0
    sample_detailed: int = 0
    sample_detailed_cycles: int = 0
    sample_errors: Dict[str, float] = field(default_factory=dict)
    # Adaptive-convergence metadata (zero/empty for fixed-count runs).
    sample_rse_target: float = 0.0
    sample_rse_rounds: int = 0
    sample_intervals_added: int = 0
    sample_converged: bool = True
    sample_rounds: Tuple[dict, ...] = ()

    @property
    def ipc(self) -> float:
        return sum(self.committed) / self.cycles if self.cycles else 0.0

    @property
    def dl1_per_instr(self) -> float:
        c = sum(self.committed)
        return self.dl1_accesses / c if c else 0.0


def _cache_key(**params) -> str:
    blob = json.dumps({"src": source_hash(), **params}, sort_keys=True)
    return hashlib.sha1(blob.encode()).hexdigest()


def _cache_load(key: str) -> Optional[dict]:
    """Load one entry from the active result store; anything
    unreadable — missing, truncated/corrupt, a non-object payload — is
    a miss (the caller recomputes and rewrites it)."""
    return active_store().load(key)


def _cache_store(key: str, payload: dict) -> None:
    """Atomically publish one entry through the active result store.

    Concurrent writers of the same key (parallel sweep workers, or two
    sweep invocations sharing a store) are safe in every backend —
    atomic rename in the file cache, an atomic upsert in sqlite — so
    readers only ever observe a complete entry; last writer wins, and
    both writers produce the same payload anyway.
    """
    active_store().store(key, payload, source_hash=source_hash())


def result_from_dict(d: dict) -> RunResult:
    """Rebuild a :class:`RunResult` from its JSON form."""
    d = dict(d)
    for k in ("benches", "committed", "thread_ipcs", "stats_vector",
              "sample_rounds"):
        if k in d:
            d[k] = tuple(d[k])
    return RunResult(**d)


def _cache_load_result(key: str) -> Optional[RunResult]:
    """Cached :class:`RunResult` for ``key``, or ``None`` on any kind
    of miss (including a schema-mismatched entry from stale code)."""
    cached = _cache_load(key)
    if cached is None:
        return None
    try:
        return result_from_dict(cached)
    except (TypeError, ValueError):
        return None


def run_point(model: str, benches: Sequence[str], phys_regs: int,
              dl1_ports: int = 2, scale: float = 1.0,
              use_cache: bool = True, sample: bool = False,
              sample_interval: int = 2000, sample_count: int = 8,
              sample_mode: str = "systematic",
              sample_rse: Optional[float] = None,
              sample_rse_metrics: Sequence[str] = (),
              sample_max: int = 64,
              sample_mem_weight: float = 0.5) -> RunResult:
    """Simulate one configuration (cached).

    ``benches`` holds one benchmark name per hardware thread.
    Configurations the machine cannot operate at (e.g. a conventional
    machine without enough registers) return a result flagged
    ``unrunnable`` rather than raising, so sweeps can chart the
    paper's "No Baseline" regions.

    With ``sample`` the run goes through checkpointed sampled
    simulation (``repro.sampling``, single-thread only): the
    ``sample_*`` parameters join the cache key, and the result carries
    the sampling metadata fields.  Full-detail keys are untouched, so
    sampled and full results never alias in the cache.  ``sample_rse``
    turns on the adaptive convergence loop; its parameters
    (and ``sample_mem_weight``, under ``bbv+mem`` only) join the key
    under the same only-when-set discipline.
    """
    benches = tuple(benches)
    if sample and len(benches) != 1:
        raise ValueError(f"sampled runs are single-threaded; got "
                         f"benches={benches}")
    key_params = dict(model=model, benches=benches,
                      phys_regs=phys_regs, dl1_ports=dl1_ports,
                      scale=scale)
    if sample:
        key_params.update(sample=True, sample_interval=sample_interval,
                          sample_count=sample_count,
                          sample_mode=sample_mode)
        if sample_mode == "bbv+mem":
            key_params.update(sample_mem_weight=sample_mem_weight)
        if sample_rse is not None:
            key_params.update(
                sample_rse=sample_rse,
                sample_rse_metrics=tuple(sample_rse_metrics),
                sample_max=sample_max)
    key = _cache_key(**key_params)
    if use_cache:
        cached = _cache_load_result(key)
        if cached is not None:
            return cached

    abi = model_abi(model)
    programs = [benchmark_program(name, abi, thread=i, scale=scale)
                for i, name in enumerate(benches)]
    cfg = MachineConfig.baseline(phys_regs=phys_regs,
                                 dl1_ports=dl1_ports)
    smeta = None
    try:
        if sample:
            from repro.sampling import (DEFAULT_RSE_METRICS,
                                        SamplingConfig, run_sampled)
            scfg = SamplingConfig(
                interval_len=sample_interval,
                n_detailed=sample_count,
                mode=sample_mode,
                mem_weight=sample_mem_weight,
                rse_target=sample_rse,
                rse_metrics=(tuple(sample_rse_metrics)
                             or DEFAULT_RSE_METRICS),
                max_detailed=sample_max)
            stats, smeta = run_sampled(model, cfg.with_(n_threads=1),
                                       programs[0], scfg)
        else:
            machine = build_machine(model, cfg, programs)
            # The span tracer holds the clocks; this module stays
            # deterministic (D002) and only names the phase.
            sp = current_spans()
            with sp.span("simulate", model=model):
                stats = machine.run(stop_at_first_halt=len(benches) > 1)
    except UnrunnableConfigError:
        result = RunResult(model=model, benches=benches,
                           phys_regs=phys_regs, dl1_ports=dl1_ports,
                           scale=scale, unrunnable=True,
                           sampled=sample)
        if use_cache:
            _cache_store(key, asdict(result))
        return result

    from repro.experiments.export import run_stat_fields
    from repro.workloads.clustering import benchmark_vector
    vector = tuple(float(v) for v in benchmark_vector(stats)) \
        if len(benches) == 1 else ()
    sample_fields = {}
    if smeta is not None:
        sample_fields = dict(
            sampled=True,
            sample_intervals=smeta.n_intervals,
            sample_detailed=smeta.n_detailed,
            sample_detailed_cycles=smeta.detailed_cycles,
            sample_errors={k: float(v)
                           for k, v in smeta.errors.items()})
        if smeta.rse_target is not None:
            sample_fields.update(
                sample_rse_target=float(smeta.rse_target),
                sample_rse_rounds=len(smeta.rounds),
                sample_intervals_added=smeta.intervals_added,
                sample_converged=smeta.converged,
                sample_rounds=tuple(dict(r) for r in smeta.rounds))
    # Scalar stats come from the shared SimStats.to_dict schema
    # (export.RUN_STAT_KEYS) rather than per-field plucking, so run
    # artifacts and stats exports cannot diverge.
    result = RunResult(
        model=model, benches=benches, phys_regs=phys_regs,
        dl1_ports=dl1_ports, scale=scale,
        committed=tuple(t.committed for t in stats.threads),
        thread_ipcs=tuple(stats.thread_ipc(i)
                          for i in range(len(benches))),
        stats_vector=vector,
        **run_stat_fields(stats), **sample_fields)
    if use_cache:
        _cache_store(key, asdict(result))
    return result


def path_ratio(bench: str, use_cache: bool = True) -> float:
    """Windowed/flat dynamic path-length ratio of one benchmark
    (functional simulation; cached)."""
    key = _cache_key(kind="path_ratio", bench=bench)
    if use_cache:
        cached = _cache_load(key)
        if cached is not None and isinstance(cached.get("ratio"), float):
            return cached["ratio"]
    ratio = measure_path_length(lambda: build_benchmark(bench)).ratio
    if use_cache:
        _cache_store(key, {"ratio": ratio})
    return ratio


def default_scale() -> float:
    """Workload scale factor; REPRO_SCALE trades fidelity for speed."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))
