"""CSV export of figure series, for external plotting.

``python -m repro fig4 --csv out.csv`` writes the same data the text
table shows, one row per (series, x) point — directly loadable by
pandas/gnuplot/Excel.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Optional


def write_series_csv(path: str, x_name: str,
                     series: Dict[str, Dict[int, Optional[float]]]) -> Path:
    """Write a figure's series to ``path``; returns the Path written.

    Unrunnable points (``None``) are emitted with an empty value cell
    so plots show the gap rather than a zero.
    """
    out = Path(path)
    xs = sorted({x for col in series.values() for x in col})
    with out.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", x_name, "value"])
        for name, col in series.items():
            for x in xs:
                v = col.get(x)
                writer.writerow([name, x, "" if v is None else f"{v:.6f}"])
    return out


def read_series_csv(path: str) -> Dict[str, Dict[int, Optional[float]]]:
    """Inverse of :func:`write_series_csv` (round-trip testing)."""
    series: Dict[str, Dict[int, Optional[float]]] = {}
    with Path(path).open() as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            col = series.setdefault(row["series"], {})
            v = row["value"]
            col[int(row[reader.fieldnames[1]])] = (
                None if v == "" else float(v))
    return series
