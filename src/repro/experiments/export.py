"""Export of experiment artifacts: figure CSVs and run-statistics JSON.

``python -m repro fig4 --csv out.csv`` writes the same data the text
table shows, one row per (series, x) point — directly loadable by
pandas/gnuplot/Excel.  ``python -m repro run ... --json out.json``
writes the full :meth:`SimStats.to_dict` record, the single schema
shared by benchmark artifacts, the experiment runner's cached results
and the metrics registry.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.pipeline.stats import SimStats

#: Version stamped into every exported artifact.  Bump when a field is
#: renamed/removed or its meaning changes; adding fields is not a
#: version bump (readers must tolerate unknown keys).
SCHEMA_VERSION = 1
#: ``schema`` value of a ``repro run --json`` record.
STATS_SCHEMA = "repro.run-stats"
#: ``schema`` value of each ``repro sweep --csv`` row.
OUTCOMES_SCHEMA = "repro.sweep-outcomes"
#: ``schema`` value of a ``repro profile --json`` record.
PROFILE_SCHEMA = "repro.profile"


def schema_tag(schema: str) -> str:
    """The compact ``<schema>/v<version>`` form used in CSV cells."""
    return f"{schema}/v{SCHEMA_VERSION}"


#: ``SimStats.to_dict`` keys the experiment runner's ``RunResult``
#: shares verbatim — the one place the overlap is defined, so run
#: artifacts and the stats schema cannot drift apart.
RUN_STAT_KEYS: Tuple[str, ...] = (
    "cycles", "dl1_accesses", "dl1_breakdown", "dl1_miss_rate",
    "l2_miss_rate", "mispredict_rate", "spills", "fills",
    "window_overflows", "window_underflows", "rsid_flushes",
)


def run_stat_fields(stats: SimStats) -> Dict:
    """The shared-key subset of one run's statistics."""
    d = stats.to_dict()
    return {k: d[k] for k in RUN_STAT_KEYS}


def write_stats_json(path: str, stats: SimStats, **meta) -> Path:
    """Write one run's full statistics record (plus ``meta`` labels
    such as model/bench names) as JSON; returns the Path written.

    The record carries ``schema``/``schema_version`` identification
    (see ``docs/experiments.md``) so downstream tooling can detect
    what it is reading without guessing from the filename.
    """
    out = Path(path)
    payload = {"schema": STATS_SCHEMA, "schema_version": SCHEMA_VERSION,
               **meta, "stats": stats.to_dict()}
    out.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return out


def read_stats_json(path: str) -> Tuple[Dict, SimStats]:
    """Inverse of :func:`write_stats_json`: (meta, SimStats).

    Validates and strips the schema identification, so ``meta`` holds
    only the caller-supplied labels.  Pre-schema files (no ``schema``
    key) are accepted for backwards compatibility.
    """
    payload = json.loads(Path(path).read_text())
    schema = payload.pop("schema", STATS_SCHEMA)
    version = payload.pop("schema_version", SCHEMA_VERSION)
    if schema != STATS_SCHEMA:
        raise ValueError(f"{path}: not a {STATS_SCHEMA} record "
                         f"(schema={schema!r})")
    if version > SCHEMA_VERSION:
        raise ValueError(f"{path}: schema_version {version} is newer "
                         f"than supported ({SCHEMA_VERSION})")
    stats = SimStats.from_dict(payload.pop("stats"))
    return payload, stats


def write_series_csv(path: str, x_name: str,
                     series: Dict[str, Dict[int, Optional[float]]]) -> Path:
    """Write a figure's series to ``path``; returns the Path written.

    Unrunnable points (``None``) are emitted with an empty value cell
    so plots show the gap rather than a zero.
    """
    out = Path(path)
    xs = sorted({x for col in series.values() for x in col})
    with out.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", x_name, "value"])
        for name, col in series.items():
            for x in xs:
                v = col.get(x)
                writer.writerow([name, x, "" if v is None else f"{v:.6f}"])
    return out


#: Per-point columns of a sweep-outcome CSV (``repro sweep --csv``).
#: ``schema`` carries the ``repro.sweep-outcomes/v1`` tag on every row
#: (CSV has no header metadata, so the tag rides in a column).
OUTCOME_FIELDS: Tuple[str, ...] = (
    "status", "kind", "model", "benches", "phys_regs", "dl1_ports",
    "scale", "elapsed", "cycles", "ipc", "dl1_accesses", "unrunnable",
    "error", "key", "schema",
    "sampled", "sample_intervals", "sample_detailed",
    "sample_detailed_cycles", "sample_rse_rounds",
    "sample_intervals_added",
)


def write_outcomes_csv(path: str, outcomes) -> Path:
    """Write one row per sweep point (``{Point: PointOutcome}`` from an
    execution engine) — the raw-grid counterpart of
    :func:`write_series_csv`."""
    out = Path(path)
    tag = schema_tag(OUTCOMES_SCHEMA)
    with out.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=OUTCOME_FIELDS)
        writer.writeheader()
        for point, oc in outcomes.items():
            row = {
                "schema": tag,
                "status": oc.status, "kind": point.kind,
                "model": point.model,
                "benches": "+".join(point.benches) or point.bench,
                "phys_regs": point.phys_regs,
                "dl1_ports": point.dl1_ports, "scale": point.scale,
                "elapsed": f"{oc.elapsed:.3f}",
                "error": oc.error.strip().splitlines()[-1]
                         if oc.error else "",
                "key": point.cache_key(),
            }
            if oc.ok and point.kind == "run":
                r = oc.result()
                row.update(cycles=r.cycles, ipc=f"{r.ipc:.6f}",
                           dl1_accesses=r.dl1_accesses,
                           unrunnable=int(r.unrunnable),
                           sampled=int(r.sampled),
                           sample_intervals=r.sample_intervals,
                           sample_detailed=r.sample_detailed,
                           sample_detailed_cycles=r.sample_detailed_cycles,
                           sample_rse_rounds=r.sample_rse_rounds,
                           sample_intervals_added=r.sample_intervals_added)
            writer.writerow(row)
    return out


def read_series_csv(path: str) -> Dict[str, Dict[int, Optional[float]]]:
    """Inverse of :func:`write_series_csv` (round-trip testing)."""
    series: Dict[str, Dict[int, Optional[float]]] = {}
    with Path(path).open() as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            col = series.setdefault(row["series"], {})
            v = row["value"]
            col[int(row[reader.fieldnames[1]])] = (
                None if v == "" else float(v))
    return series
