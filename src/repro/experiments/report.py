"""Plain-text rendering of result tables and figure series."""

from __future__ import annotations

from typing import Dict, Optional, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width table; floats are shown with three decimals."""
    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        if v is None:
            return "--"
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_progress(progress, width: int = 24) -> str:
    """One live status line for a running sweep (a
    :class:`~repro.experiments.engine.SweepProgress` snapshot):
    progress bar, per-status counts, and the ETA once known."""
    total = max(1, progress.total)
    filled = int(width * progress.completed / total)
    bar = "#" * filled + "-" * (width - filled)
    line = (f"[{bar}] {progress.completed}/{progress.total}"
            f"  done {progress.done}"
            f"  cached {progress.cached + progress.resumed}"
            f"  failed {progress.failed + progress.timeout}")
    if progress.eta is not None:
        line += f"  eta {progress.eta:.0f}s"
    return line


def render_outcome_summary(outcomes, elapsed: float) -> str:
    """End-of-sweep summary: one headline line (greppable ``executed
    N`` count) plus a line per failed/timed-out point."""
    counts = {}
    for oc in outcomes.values():
        counts[oc.status] = counts.get(oc.status, 0) + 1
    executed = sum(counts.get(s, 0) for s in ("done", "failed",
                                              "timeout"))
    parts = [f"{counts[s]} {s}" for s in
             ("done", "cached", "resumed", "failed", "timeout")
             if counts.get(s)]
    lines = [f"sweep: {len(outcomes)} points ({', '.join(parts) or 'none'})"
             f" — executed {executed} in {elapsed:.1f}s"]
    for point, oc in outcomes.items():
        if not oc.ok:
            reason = (oc.error.strip().splitlines()[-1]
                      if oc.error else oc.status)
            lines.append(f"  {oc.status}: {point.label}: {reason}")
    return "\n".join(lines)


def render_series(title: str, x_name: str,
                  series: Dict[str, Dict[int, Optional[float]]]) -> str:
    """A figure as a table: one column per series, one row per x.

    ``None`` values render as ``--`` (the paper's "No Baseline"
    annotations for unrunnable configurations).
    """
    xs = sorted({x for ys in series.values() for x in ys})
    headers = [x_name] + list(series)
    rows = []
    for x in xs:
        rows.append([x] + [series[name].get(x) for name in series])
    return render_table(headers, rows, title=title)
