"""Plain-text rendering of result tables and figure series."""

from __future__ import annotations

from typing import Dict, Optional, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width table; floats are shown with three decimals."""
    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        if v is None:
            return "--"
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(title: str, x_name: str,
                  series: Dict[str, Dict[int, Optional[float]]]) -> str:
    """A figure as a table: one column per series, one row per x.

    ``None`` values render as ``--`` (the paper's "No Baseline"
    annotations for unrunnable configurations).
    """
    xs = sorted({x for ys in series.values() for x in ys})
    headers = [x_name] + list(series)
    rows = []
    for x in xs:
        rows.append([x] + [series[name].get(x) for name in series])
    return render_table(headers, rows, title=title)
