"""The repository layer: pluggable, content-addressed result stores.

Every simulation result is addressed by the runner's content hash
(:func:`repro.experiments.runner._cache_key` — the run parameters plus
the semantics source hash), and historically lived as one JSON file
per key under ``.repro_cache/``.  This module turns that ad-hoc cache
into an explicit repository layer with two interchangeable backends:

* :class:`FileStore` — the historical per-key JSON file cache,
  bit-compatible with every cache directory written before this layer
  existed (same paths, same atomic ``mkstemp`` + ``os.replace``
  publish).
* :class:`SqliteStore` — a single sqlite3 database holding the same
  payloads in a ``results`` table, plus an **audit trail** (who stored
  or submitted what, when, under which ``source_hash``) and a
  ``claims`` table that lets concurrent schedulers agree on who runs a
  missing point.  Opened with WAL journaling and a busy timeout so
  many worker processes can hammer one store safely; writes are a
  single atomic upsert.  A :class:`FileStore` can be attached as a
  read-through *fallback*: a pre-existing JSON cache entry satisfies a
  lookup (and is promoted into sqlite), so switching stores never
  recomputes old results.

Selection is environmental, like ``REPRO_CACHE_DIR``: when
``REPRO_STORE`` names a sqlite file, :func:`active_store` returns a
:class:`SqliteStore` fronting the file cache; otherwise the plain
:class:`FileStore`.  Engine workers inherit both variables through
``repro_env()``, so a sweep's parent and its forked workers always
read and write the same repository.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ResultStore", "FileStore", "SqliteStore", "active_store",
    "store_self_check",
]


class ResultStore:
    """The repository interface every backend implements.

    Keys are the runner's content-addressed cache keys; payloads are
    the JSON-serializable dicts the engine journals and pipes around.
    """

    #: Human-readable backend name (CLI/status surfaces).
    kind = "abstract"

    def load(self, key: str) -> Optional[dict]:
        """The payload stored under ``key``, or ``None`` on any kind
        of miss (missing, corrupt, non-object)."""
        raise NotImplementedError

    def store(self, key: str, payload: dict,
              source_hash: Optional[str] = None,
              actor: Optional[str] = None) -> None:
        """Atomically publish ``payload`` under ``key`` (last writer
        wins; concurrent writers of one key produce identical payloads
        by construction)."""
        raise NotImplementedError

    def keys(self) -> List[str]:
        """Every key currently stored."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FileStore(ResultStore):
    """The historical one-JSON-file-per-key cache directory.

    Readable and writable by every version of this package that ever
    cached a result: ``<root>/<key>.json`` holding the payload.
    """

    kind = "file"

    def __init__(self, root) -> None:
        self.root = Path(root)

    def load(self, key: str) -> Optional[dict]:
        try:
            payload = json.loads((self.root / f"{key}.json").read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def store(self, key: str, payload: dict,
              source_hash: Optional[str] = None,
              actor: Optional[str] = None) -> None:
        """Unique temp file + atomic ``os.replace``, so readers only
        ever observe complete entries."""
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=f"{key}.",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(payload))
            os.replace(tmp, self.root / f"{key}.json")
        except OSError:  # pragma: no cover - cleanup best effort
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def keys(self) -> List[str]:
        try:
            names = sorted(p.stem for p in self.root.glob("*.json"))
        except OSError:  # pragma: no cover - unreadable dir
            return []
        return names


#: Schema version stamped into the sqlite ``meta`` table.
STORE_SCHEMA = 1

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS meta (
    k TEXT PRIMARY KEY, v TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS results (
    key TEXT PRIMARY KEY,
    payload TEXT NOT NULL,
    source_hash TEXT,
    actor TEXT,
    created REAL NOT NULL,
    updated REAL NOT NULL);
CREATE TABLE IF NOT EXISTS audit (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    t REAL NOT NULL,
    actor TEXT,
    action TEXT NOT NULL,
    key TEXT,
    source_hash TEXT,
    detail TEXT);
CREATE TABLE IF NOT EXISTS claims (
    key TEXT PRIMARY KEY,
    owner TEXT NOT NULL,
    pid INTEGER,
    t REAL NOT NULL);
"""


class SqliteStore(ResultStore):
    """A sqlite3-backed result repository with an audit trail.

    One database file holds every result (``results``), an append-only
    record of who did what (``audit``) and the cross-process point
    claims (``claims``).  The connection is opened with

    * ``journal_mode=WAL`` — readers never block writers and a crash
      mid-write cannot corrupt committed data;
    * ``busy_timeout`` — concurrent writers queue instead of failing;
    * ``synchronous=NORMAL`` — durable-enough for a derived cache
      (every payload is recomputable) at much lower fsync cost.

    ``fallback`` (typically the :class:`FileStore` over the historical
    cache directory) is consulted on a miss; hits are *promoted* into
    sqlite with an ``audit`` row of action ``migrate``, so old caches
    drain into the store as they are touched — and
    :meth:`migrate_from` does the same eagerly for a whole store.
    """

    kind = "sqlite"

    def __init__(self, path, fallback: Optional[ResultStore] = None,
                 actor: Optional[str] = None,
                 busy_timeout_ms: int = 10_000,
                 claim_stale_s: float = 3600.0) -> None:
        self.path = Path(path)
        self.fallback = fallback
        self.actor = actor or f"pid-{os.getpid()}"
        self.claim_stale_s = claim_stale_s
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # One connection shared across the server's handler threads;
        # sqlite3 objects are not thread-safe, so every use holds the
        # lock (the transactions are all short).
        self._lock = threading.RLock()
        self._conn: Optional[sqlite3.Connection] = sqlite3.connect(
            str(self.path), timeout=busy_timeout_ms / 1000.0,
            check_same_thread=False)
        with self._lock:
            cur = self._conn
            cur.execute("PRAGMA journal_mode=WAL")
            cur.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
            cur.execute("PRAGMA synchronous=NORMAL")
            cur.executescript(_SCHEMA_SQL)
            cur.execute(
                "INSERT OR IGNORE INTO meta(k, v) VALUES('schema', ?)",
                (str(STORE_SCHEMA),))
            cur.commit()

    # -- core interface ----------------------------------------------------

    def load(self, key: str) -> Optional[dict]:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE key = ?",
                (key,)).fetchone()
        if row is not None:
            try:
                payload = json.loads(row[0])
            except json.JSONDecodeError:  # pragma: no cover - corrupt row
                return None
            return payload if isinstance(payload, dict) else None
        if self.fallback is not None:
            payload = self.fallback.load(key)
            if payload is not None:
                self._upsert(key, payload, source_hash=None,
                             actor=self.actor, action="migrate")
                return payload
        return None

    def store(self, key: str, payload: dict,
              source_hash: Optional[str] = None,
              actor: Optional[str] = None) -> None:
        self._upsert(key, payload, source_hash=source_hash,
                     actor=actor or self.actor, action="store")

    def _upsert(self, key: str, payload: dict,
                source_hash: Optional[str], actor: str,
                action: str) -> None:
        blob = json.dumps(payload)
        now = time.time()
        with self._lock:
            self._conn.execute(
                "INSERT INTO results(key, payload, source_hash, actor,"
                " created, updated) VALUES(?, ?, ?, ?, ?, ?)"
                " ON CONFLICT(key) DO UPDATE SET"
                " payload = excluded.payload,"
                " source_hash = excluded.source_hash,"
                " actor = excluded.actor, updated = excluded.updated",
                (key, blob, source_hash, actor, now, now))
            self._conn.execute(
                "INSERT INTO audit(t, actor, action, key, source_hash,"
                " detail) VALUES(?, ?, ?, ?, ?, ?)",
                (now, actor, action, key, source_hash, None))
            self._conn.commit()

    def keys(self) -> List[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT key FROM results ORDER BY key").fetchall()
        return [r[0] for r in rows]

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    # -- audit trail -------------------------------------------------------

    def audit(self, action: str, key: Optional[str] = None,
              actor: Optional[str] = None,
              source_hash: Optional[str] = None,
              detail: Optional[dict] = None) -> None:
        """Append one audit record (used by the service for submit /
        cancel / fetch events; ``store`` writes its own rows)."""
        with self._lock:
            self._conn.execute(
                "INSERT INTO audit(t, actor, action, key, source_hash,"
                " detail) VALUES(?, ?, ?, ?, ?, ?)",
                (time.time(), actor or self.actor, action, key,
                 source_hash,
                 json.dumps(detail) if detail is not None else None))
            self._conn.commit()

    def audit_rows(self, limit: int = 100,
                   action: Optional[str] = None) -> List[Dict]:
        """The newest ``limit`` audit records, newest first."""
        sql = ("SELECT t, actor, action, key, source_hash, detail "
               "FROM audit")
        params: Tuple = ()
        if action is not None:
            sql += " WHERE action = ?"
            params = (action,)
        sql += " ORDER BY id DESC LIMIT ?"
        with self._lock:
            rows = self._conn.execute(sql, params + (int(limit),)) \
                .fetchall()
        out = []
        for t, actor, act, key, srch, detail in rows:
            rec = {"t": t, "actor": actor, "action": act, "key": key,
                   "source_hash": srch}
            if detail:
                try:
                    rec["detail"] = json.loads(detail)
                except json.JSONDecodeError:  # pragma: no cover
                    rec["detail"] = detail
            out.append(rec)
        return out

    # -- claims ------------------------------------------------------------

    def claim(self, key: str, owner: str) -> bool:
        """Atomically claim ``key`` for ``owner``.

        Exactly one concurrent claimant wins (``INSERT OR IGNORE`` on
        the primary key); re-claiming a key you already own succeeds.
        Claims older than ``claim_stale_s`` are presumed abandoned by
        a crashed process and are swept before the attempt.
        """
        now = time.time()
        with self._lock:
            self._conn.execute(
                "DELETE FROM claims WHERE t < ?",
                (now - self.claim_stale_s,))
            cur = self._conn.execute(
                "INSERT OR IGNORE INTO claims(key, owner, pid, t)"
                " VALUES(?, ?, ?, ?)", (key, owner, os.getpid(), now))
            won = cur.rowcount == 1
            if not won:
                row = self._conn.execute(
                    "SELECT owner FROM claims WHERE key = ?",
                    (key,)).fetchone()
                won = row is not None and row[0] == owner
            self._conn.commit()
        return won

    def release(self, key: str, owner: Optional[str] = None) -> None:
        """Drop a claim (optionally only if ``owner`` still holds it)."""
        with self._lock:
            if owner is None:
                self._conn.execute(
                    "DELETE FROM claims WHERE key = ?", (key,))
            else:
                self._conn.execute(
                    "DELETE FROM claims WHERE key = ? AND owner = ?",
                    (key, owner))
            self._conn.commit()

    def data_version(self) -> int:
        """sqlite's counter of *other* connections' committed writes.

        Cheap change detection for pollers: the value moves exactly
        when a different connection commits to this database, so a
        scheduler can skip its waiting-point sweep until something
        actually changed.  Commits made through *this* connection do
        not bump it — callers keep a slow timed fallback for those.
        """
        with self._lock:
            row = self._conn.execute(
                "PRAGMA data_version").fetchone()
        return int(row[0])

    def gc_claims(self, max_age_s: Optional[float] = None,
                  owner: Optional[str] = None) -> int:
        """Bulk-drop claims; returns how many rows were removed.

        With ``owner`` set, drops that owner's claims regardless of
        age (e.g. after a scheduler is known dead).  Otherwise drops
        claims older than ``max_age_s`` (default ``claim_stale_s``;
        ``0`` sweeps everything).  :meth:`claim` already sweeps stale
        rows opportunistically — this is the explicit maintenance
        entry point (``repro store gc-claims``), and it leaves an
        audit record when anything was removed.
        """
        with self._lock:
            if owner is not None:
                cur = self._conn.execute(
                    "DELETE FROM claims WHERE owner = ?", (owner,))
            else:
                age = self.claim_stale_s if max_age_s is None \
                    else max_age_s
                cur = self._conn.execute(
                    "DELETE FROM claims WHERE t < ?",
                    (time.time() - age,))
            removed = cur.rowcount
            self._conn.commit()
        if removed:
            self.audit("gc-claims",
                       detail={"removed": removed, "owner": owner})
        return removed

    # -- maintenance -------------------------------------------------------

    def migrate_from(self, other: ResultStore,
                     actor: Optional[str] = None) -> int:
        """Copy every entry of ``other`` not already present; returns
        the number of entries imported."""
        imported = 0
        have = set(self.keys())
        for key in other.keys():
            if key in have:
                continue
            payload = other.load(key)
            if payload is None:
                continue
            self._upsert(key, payload, source_hash=None,
                         actor=actor or self.actor, action="migrate")
            imported += 1
        return imported

    def stats(self) -> Dict:
        """Counts and identity for CLI/status surfaces."""
        with self._lock:
            results = self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()[0]
            audit = self._conn.execute(
                "SELECT COUNT(*) FROM audit").fetchone()[0]
            claims = self._conn.execute(
                "SELECT COUNT(*) FROM claims").fetchone()[0]
        return {"backend": self.kind, "path": str(self.path),
                "results": results, "audit": audit, "claims": claims,
                "schema": STORE_SCHEMA}

    def integrity_ok(self) -> bool:
        """sqlite's own ``PRAGMA integrity_check`` verdict."""
        with self._lock:
            row = self._conn.execute(
                "PRAGMA integrity_check").fetchone()
        return bool(row) and row[0] == "ok"


# ----------------------------------------------------------------------
# process-wide active store
# ----------------------------------------------------------------------

#: The one live store per process: ``{"pid", "sig", "store"}``.
_active = {"pid": None, "sig": None, "store": None}
#: Stores abandoned after a fork — referenced so the child's GC never
#: closes the parent's sqlite connection (closing a POSIX-locked fd in
#: the child could release the parent's locks).
_abandoned: List[ResultStore] = []


def _store_sig() -> Tuple[str, str]:
    from repro.experiments.runner import cache_dir
    return (os.environ.get("REPRO_STORE", ""), str(cache_dir()))


def active_store() -> ResultStore:
    """The repository this process reads and writes results through.

    ``REPRO_STORE`` (a sqlite file path) selects the sqlite backend
    with the file cache as read-through fallback; otherwise the plain
    file cache.  Re-evaluated on every call — like ``cache_dir()`` —
    so forked/spawned engine workers and tests that re-point the
    environment always agree with it; the built store is reused until
    the pid or the environment changes.
    """
    from repro.experiments.runner import cache_dir
    pid = os.getpid()
    sig = _store_sig()
    if (_active["store"] is not None and _active["pid"] == pid
            and _active["sig"] == sig):
        return _active["store"]
    if _active["store"] is not None:
        if _active["pid"] == pid:
            _active["store"].close()
        else:
            _abandoned.append(_active["store"])
    file_store = FileStore(cache_dir())
    if sig[0]:
        store: ResultStore = SqliteStore(sig[0], fallback=file_store)
    else:
        store = file_store
    _active.update(pid=pid, sig=sig, store=store)
    return store


# ----------------------------------------------------------------------
# self-check (tools/ci_checks.py)
# ----------------------------------------------------------------------
def store_self_check(verbose: bool = True) -> int:
    """An end-to-end integrity exercise of the repository layer.

    Builds a throwaway file cache, migrates it into a fresh sqlite
    store, and verifies: migration round-trip, upsert atomicity (last
    writer wins, single row), fallback promotion, claim exclusivity,
    and sqlite's own integrity check.  Returns 0 on success — run by
    ``tools/ci_checks.py store``.
    """
    failures: List[str] = []

    def check(name: str, ok: bool) -> None:
        if verbose:
            print(f"  store: {name}: {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(name)

    with tempfile.TemporaryDirectory(prefix="repro-store-") as tmp:
        root = Path(tmp)
        files = FileStore(root / "cache")
        for i in range(5):
            files.store(f"k{i}", {"i": i, "payload": [i, i * i]})
        db = SqliteStore(root / "store.sqlite", fallback=files)
        try:
            n = db.migrate_from(files)
            check("migration imports every entry", n == 5)
            check("round-trip equality", all(
                db.load(f"k{i}") == files.load(f"k{i}")
                for i in range(5)))
            db.store("k0", {"i": 0, "payload": "updated"},
                     source_hash="deadbeef")
            check("upsert keeps one row per key",
                  db.keys() == sorted(f"k{i}" for i in range(5)))
            check("upsert last-writer-wins",
                  (db.load("k0") or {}).get("payload") == "updated")
            files.store("fresh", {"from": "fallback"})
            check("fallback read-through + promotion",
                  db.load("fresh") == {"from": "fallback"}
                  and "fresh" in db.keys())
            check("claim exclusivity",
                  db.claim("point", "a") and not db.claim("point", "b")
                  and db.claim("point", "a"))
            db.release("point", "a")
            check("claim release", db.claim("point", "b"))
            check("audit trail recorded",
                  len(db.audit_rows(limit=100)) >= 7)
            check("sqlite integrity", db.integrity_ok())
        finally:
            db.close()
    if failures:
        print(f"store self-check: FAILED: {', '.join(failures)}")
        return 1
    if verbose:
        print("store self-check: OK")
    return 0
