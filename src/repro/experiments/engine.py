"""Plan execution engines: serial and parallel, fault-tolerant.

An engine runs the points of a sweep plan (``repro.experiments.plan``)
and returns ``{Point: PointOutcome}``.  Both engines share the same
front half — dedupe, journal-resume, cache-aware scheduling (points
whose result is already on disk are resolved in-process, before any
worker is forked) — and differ only in how the residue executes:

* :class:`SerialEngine` runs points in-process, capturing exceptions
  into the point's outcome so one broken configuration cannot kill a
  sweep.
* :class:`ParallelEngine` runs each point in its own worker process
  (``fork`` where available, else ``spawn``), giving hard fault
  isolation: an exception, a hard crash (``os._exit``, segfault) or a
  per-point timeout marks only that point failed; every other point
  completes.  The parent's ``REPRO_*`` environment is propagated to
  workers explicitly, so spawned workers never silently run at default
  scale or against the wrong cache directory.

Every finished point is appended to an optional JSONL *journal*;
re-running with ``resume=True`` replays completed points from the
journal (failed and timed-out points are retried).  Progress flows
through a callback as :class:`SweepProgress` snapshots, and per-point
accounting can be aggregated into a
:class:`repro.obs.MetricsRegistry`.

With a :class:`repro.obs.runlog.RunLedger` attached (``ledger=``),
every run additionally leaves an auditable record: the engine writes
the ``run_start``/``point``/``run_end`` records, collects per-point
``getrusage`` deltas in the worker, and weaves one span tree per point
(``sweep → point → ...``) across the Pipe boundary — workers continue
the parent's trace via a propagated span context and ship their
finished spans back alongside the payload.  Points that never report
(crash, timeout) get a terminated span synthesized parent-side, so the
ledger always reassembles into exactly one tree per point.  A ledger
doubles as a resume journal: its ``point`` records carry the same
``key``/``status``/``payload`` fields.
"""

from __future__ import annotations

import json
import math
import multiprocessing as mp
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple,
)

from repro.hooks import set_current_spans
from repro.obs.spans import SpanTracer

from .plan import Point, SweepSpec, unique_points

#: Outcome statuses counted as successfully completed.
_OK_STATUSES = ("done", "cached", "resumed")


class EngineError(RuntimeError):
    """Raised when a failed point's result is requested."""


class ResumeConflictError(RuntimeError):
    """Raised when ``--journal`` and ``--ledger`` disagree about a
    completed point during resume (same key, both OK, different
    payloads) — silently picking either would make the resumed sweep's
    results depend on file order."""


@dataclass
class PointOutcome:
    """What happened to one point of a sweep.

    ``status`` is one of ``done`` (executed this run), ``cached``
    (resolved from the result cache without executing), ``resumed``
    (replayed from the journal), ``failed`` (exception or worker
    crash; see ``error``) or ``timeout``.
    """

    point: Point
    status: str
    payload: Optional[dict] = None
    error: str = ""
    elapsed: float = 0.0
    #: Worker-side resource usage delta (``getrusage``); ``None`` when
    #: no ledger was attached or the worker never reported.
    rusage: Optional[dict] = None
    #: Finished span dicts for this point (worker-exported, or
    #: synthesized parent-side for cached/crashed/timed-out points).
    spans: Optional[List[dict]] = None

    @property
    def ok(self) -> bool:
        """True when a payload is available (done/cached/resumed)."""
        return self.status in _OK_STATUSES

    def result(self) -> Any:
        """The point's decoded value; raises :class:`EngineError` for
        failed/timed-out points."""
        if not self.ok or self.payload is None:
            raise EngineError(
                f"point {self.point.label} {self.status}: {self.error}")
        return self.point.decode(self.payload)


@dataclass
class SweepProgress:
    """A live snapshot of a running sweep, passed to the progress
    callback after every resolved point."""

    total: int = 0
    done: int = 0
    cached: int = 0
    resumed: int = 0
    failed: int = 0
    timeout: int = 0
    elapsed: float = 0.0
    #: Estimated seconds until the sweep completes (``None`` until at
    #: least one point has executed).
    eta: Optional[float] = None

    @property
    def completed(self) -> int:
        """Points resolved so far, by any route including failure."""
        return (self.done + self.cached + self.resumed + self.failed
                + self.timeout)

    @property
    def executed(self) -> int:
        """Points that actually ran (did not come from cache/journal)."""
        return self.done + self.failed + self.timeout


def repro_env() -> Dict[str, str]:
    """The ``REPRO_*`` environment to propagate to workers."""
    return {k: v for k, v in sorted(os.environ.items())
            if k.startswith("REPRO_")}


def apply_repro_env(env: Dict[str, str]) -> None:
    """Make this process's ``REPRO_*`` environment exactly ``env``
    (workers call this before executing any point)."""
    for k in [k for k in os.environ if k.startswith("REPRO_")]:
        if k not in env:
            del os.environ[k]
    os.environ.update(env)


def load_journal(path: Path) -> Dict[str, dict]:
    """Parse a sweep journal into ``{cache_key: record}``.

    Later records win (a resumed sweep appends), and a truncated final
    line — the crash the journal exists to survive — is ignored.
    """
    records: Dict[str, dict] = {}
    try:
        text = path.read_text()
    except OSError:
        return records
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(rec, dict) and "key" in rec:
            records[rec["key"]] = rec
    return records


def merge_resume_records(journal: Dict[str, dict],
                         ledger: Dict[str, dict]) -> Dict[str, dict]:
    """Merge the two resume sources under one precedence rule.

    The journal wins for any key both files carry.  But if both carry
    a *completed* record (OK status, non-``None`` payload) for one key
    and the payloads differ, resuming is ambiguous — the two files
    describe different runs — and :class:`ResumeConflictError` is
    raised naming the key, rather than silently preferring one.
    """
    merged = dict(ledger)
    for key, jrec in journal.items():
        lrec = merged.get(key)
        if (lrec is not None
                and jrec.get("status") in _OK_STATUSES
                and lrec.get("status") in _OK_STATUSES
                and jrec.get("payload") is not None
                and lrec.get("payload") is not None
                and jrec["payload"] != lrec["payload"]):
            label = (jrec.get("point") or {}).get("kind", "?")
            raise ResumeConflictError(
                f"resume conflict for point {key[:12]}… (kind "
                f"{label}): the journal and the ledger both hold a "
                f"completed payload and they differ; re-run one file "
                f"or drop --resume")
        merged[key] = jrec
    return merged


def _rusage_snapshot() -> Optional[Dict[str, float]]:
    """Current-process resource usage, or ``None`` where the
    :mod:`resource` module is unavailable (non-Unix)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix
        return None
    ru = resource.getrusage(resource.RUSAGE_SELF)
    return {"utime": ru.ru_utime, "stime": ru.ru_stime,
            "maxrss_kb": ru.ru_maxrss,
            "minflt": ru.ru_minflt, "majflt": ru.ru_majflt}


def _rusage_delta(before: Optional[Dict]) -> Optional[Dict]:
    """Resource usage since ``before`` (``maxrss_kb`` is the process
    high-water mark, not a delta)."""
    after = _rusage_snapshot()
    if before is None or after is None:
        return after
    return {"utime": round(after["utime"] - before["utime"], 6),
            "stime": round(after["stime"] - before["stime"], 6),
            "maxrss_kb": after["maxrss_kb"],
            "minflt": after["minflt"] - before["minflt"],
            "majflt": after["majflt"] - before["majflt"]}


#: Outcome status -> span status for point spans synthesized
#: parent-side (a worker that reported carries its own statuses).
_SPAN_STATUS = {"done": "ok", "cached": "cached", "resumed": "resumed",
                "failed": "terminated", "timeout": "timeout"}


def _journal_line(outcome: PointOutcome) -> str:
    return json.dumps({
        "key": outcome.point.cache_key(),
        "status": outcome.status,
        "point": outcome.point.to_dict(),
        "payload": outcome.payload,
        "error": outcome.error,
        "elapsed": round(outcome.elapsed, 6),
    })


class _EngineBase:
    """Shared scheduling front half of every engine."""

    #: Worker-slot count, for ETA estimation.
    workers = 1

    def __init__(self, use_cache: bool = True) -> None:
        self.use_cache = use_cache

    def run(self, points: Iterable[Point],
            journal: Optional[os.PathLike] = None,
            resume: bool = False,
            progress: Optional[Callable[[SweepProgress], None]] = None,
            metrics: Optional[Any] = None,
            ledger: Optional[Any] = None,
            ) -> Dict[Point, PointOutcome]:
        """Run ``points`` (or a plan's expansion) to completion.

        Never raises for a failing *point* — inspect the returned
        outcomes (or call :meth:`PointOutcome.result`, which raises
        :class:`EngineError` for failures).

        ``ledger`` (a :class:`repro.obs.runlog.RunLedger`) enables the
        audit trail and span tracing: run/point records, per-point
        rusage, and one span tree per point.  With ``resume`` and no
        ``journal``, a ledger's own file is used as the resume journal.
        """
        pts = unique_points(points)
        prog = SweepProgress(total=len(pts))
        t0 = time.monotonic()
        elapsed_samples: List[float] = []
        outcomes: Dict[Point, PointOutcome] = {}

        journal_path = Path(journal) if journal is not None else None
        prior: Dict[str, dict] = {}
        if resume:
            # Both sources are consulted; the journal takes precedence
            # per key, and two completed-but-different payloads for
            # one point raise rather than racing (see
            # merge_resume_records).
            jrecs = (load_journal(journal_path)
                     if journal_path is not None else {})
            lrecs = (load_journal(Path(ledger.path))
                     if ledger is not None else {})
            prior = merge_resume_records(jrecs, lrecs)
        jfh = None
        if metrics is not None:
            metrics.set("sweep.points.total", len(pts))

        spans = SpanTracer() if ledger is not None else None
        sweep_span = None
        if ledger is not None:
            ledger.run_start(total=len(pts), workers=self.workers,
                             trace_id=spans.trace_id)
            sweep_span = spans.begin("sweep", total=len(pts))

        def emit(outcome: PointOutcome) -> None:
            """Record one resolved point: outcome map, progress/ETA,
            journal line, ledger record, metrics — the single
            bookkeeping path every engine's ``_execute`` reports
            through."""
            outcomes[outcome.point] = outcome
            setattr(prog, outcome.status,
                    getattr(prog, outcome.status) + 1)
            prog.elapsed = time.monotonic() - t0
            if outcome.status in ("done", "failed", "timeout"):
                elapsed_samples.append(outcome.elapsed)
            remaining = prog.total - prog.completed
            if elapsed_samples and remaining:
                # Only points that actually executed feed the rate
                # estimate (cached/resumed points resolve in
                # microseconds and would make a mostly-cached resume
                # look nearly free), and a worker pool finishes the
                # residue in whole waves: 1 remaining point on 8
                # workers still costs one full point, not 1/8th.
                avg = sum(elapsed_samples) / len(elapsed_samples)
                prog.eta = avg * math.ceil(
                    remaining / max(1, self.workers))
            elif not remaining:
                prog.eta = 0.0
            if jfh is not None:
                jfh.write(_journal_line(outcome) + "\n")
                jfh.flush()
            if ledger is not None:
                if not outcome.spans:
                    # The worker never exported spans (cache hit,
                    # resume replay, hard crash, timeout): synthesize
                    # a terminated point span parent-side so the
                    # ledger still holds one tree per point.
                    end_t = time.time()
                    spans.record(
                        "point", end_t - outcome.elapsed, end_t,
                        status=_SPAN_STATUS.get(outcome.status,
                                                outcome.status),
                        key=outcome.point.cache_key(),
                        label=outcome.point.label)
                cache = {"cached": "hit", "resumed": "hit",
                         "done": "miss"}.get(outcome.status)
                ledger.point(
                    key=outcome.point.cache_key(),
                    status=outcome.status,
                    point=outcome.point.to_dict(),
                    payload=outcome.payload, error=outcome.error,
                    elapsed=outcome.elapsed, cache=cache,
                    rusage=outcome.rusage,
                    spans=(outcome.spans or []) + spans.drain())
            if metrics is not None:
                metrics.inc(f"sweep.points.{outcome.status}")
                if outcome.status in ("done", "failed", "timeout"):
                    metrics.dist("sweep.point_seconds").record(
                        outcome.elapsed)
            if progress is not None:
                progress(prog)

        try:
            # Opened inside the try so the finally below owns the
            # handle on every path, exceptional ones included.
            if journal_path is not None:
                jfh = journal_path.open("a")
            to_run: List[Point] = []
            for pt in pts:
                if pt.cacheable:
                    rec = prior.get(pt.cache_key())
                    if (rec is not None
                            and rec.get("status") in _OK_STATUSES
                            and rec.get("payload") is not None):
                        emit(PointOutcome(pt, "resumed",
                                          payload=rec["payload"]))
                        continue
                    if self.use_cache:
                        payload = pt.load_cached()
                        if payload is not None:
                            emit(PointOutcome(pt, "cached",
                                              payload=payload))
                            continue
                to_run.append(pt)
            self._execute(to_run, emit, spans=spans, ledger=ledger)
        finally:
            # The journal closes first: a raising ledger call must
            # not leak the handle.
            if jfh is not None:
                jfh.close()
            if ledger is not None:
                spans.end(sweep_span, **{
                    f"points.{k}": getattr(prog, k)
                    for k in ("done", "cached", "resumed", "failed",
                              "timeout") if getattr(prog, k)})
                ledger.run_end(
                    status="ok" if prog.completed == prog.total
                    else "interrupted",
                    counts={k: getattr(prog, k)
                            for k in ("done", "cached", "resumed",
                                      "failed", "timeout")},
                    elapsed=time.monotonic() - t0,
                    spans=spans.drain())
        return outcomes

    def _execute(self, points: Sequence[Point],
                 emit: Callable[[PointOutcome], None],
                 spans: Optional[SpanTracer] = None,
                 ledger: Optional[Any] = None) -> None:
        raise NotImplementedError


class SerialEngine(_EngineBase):
    """In-process executor with exception (but not crash/timeout)
    isolation — the reference implementation parallel runs must
    match."""

    def _execute(self, points, emit, spans=None, ledger=None):
        for pt in points:
            if ledger is not None:
                ledger.point_start(pt.cache_key(), pt.label)
            prev = None
            psp = None
            ru0 = _rusage_snapshot() if ledger is not None else None
            if spans is not None:
                prev = set_current_spans(spans)
                psp = spans.begin("point", key=pt.cache_key(),
                                  label=pt.label)
            t0 = time.monotonic()
            try:
                payload = pt.execute(use_cache=self.use_cache)
                outcome = PointOutcome(pt, "done", payload=payload,
                                       elapsed=time.monotonic() - t0)
                if spans is not None:
                    spans.end(psp, status="ok")
            except Exception:  # lint: allow-broad-except (point isolation)
                outcome = PointOutcome(
                    pt, "failed", error=traceback.format_exc(limit=8),
                    elapsed=time.monotonic() - t0)
                if spans is not None:
                    spans.end(psp, status="error")
            finally:
                if spans is not None:
                    set_current_spans(prev)
            if ledger is not None:
                outcome.rusage = _rusage_delta(ru0)
                outcome.spans = spans.drain()
            emit(outcome)


def _worker_main(conn, point: Point, use_cache: bool,
                 env: Dict[str, str],
                 span_ctx: Optional[Dict] = None) -> None:
    """Run one point in a worker process and ship its payload back.

    The Pipe message is ``(kind, value, meta)``: kind ``"ok"`` with the
    payload or ``"error"`` with a traceback, plus a meta dict carrying
    the worker's finished spans and its ``getrusage`` delta.  With a
    ``span_ctx`` the worker continues the parent's trace: it installs
    its own tracer as the process-wide current one, so the sampling
    pipeline's phase spans land under this point's span.
    """
    ru0 = _rusage_snapshot()
    tracer = psp = None
    try:
        apply_repro_env(env)
        if span_ctx is not None:
            tracer = SpanTracer.from_context(span_ctx)
            set_current_spans(tracer)
            psp = tracer.begin("point", key=point.cache_key(),
                              label=point.label)
        payload = point.execute(use_cache=use_cache)
        if tracer is not None:
            tracer.end(psp, status="ok")
        conn.send(("ok", payload, _worker_meta(tracer, ru0)))
    except Exception:  # lint: allow-broad-except (crash isolation)
        if tracer is not None:
            tracer.close(status="error")
        try:
            conn.send(("error", traceback.format_exc(limit=8),
                       _worker_meta(tracer, ru0)))
        except (OSError, ValueError):  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


def _worker_meta(tracer: Optional[SpanTracer],
                 ru0: Optional[Dict]) -> Dict:
    """The telemetry side-channel shipped back beside every result."""
    return {"spans": tracer.export() if tracer is not None else [],
            "rusage": _rusage_delta(ru0)}


class ParallelEngine(_EngineBase):
    """Multiprocessing executor: one worker process per point.

    ``workers`` bounds concurrency (default: the CPU count).
    ``timeout`` (seconds) kills and fails any single point that runs
    too long.  ``start_method`` picks the multiprocessing start method
    (default ``fork`` where available — workers inherit warm imports —
    else ``spawn``; spawned workers re-import cold, which is why the
    parent's ``REPRO_*`` environment is re-applied explicitly in the
    worker before execution).
    """

    def __init__(self, workers: Optional[int] = None,
                 timeout: Optional[float] = None,
                 start_method: Optional[str] = None,
                 use_cache: bool = True) -> None:
        super().__init__(use_cache=use_cache)
        self.workers = max(1, workers if workers else
                           (os.cpu_count() or 1))
        self.timeout = timeout
        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else "spawn")
        self._ctx = mp.get_context(start_method)

    def _execute(self, points, emit, spans=None, ledger=None):
        pending = deque(points)
        live: Dict[Any, Tuple[Point, float, Any]] = {}
        env = repro_env()
        span_ctx = spans.context() if spans is not None else None
        try:
            while pending or live:
                while pending and len(live) < self.workers:
                    pt = pending.popleft()
                    if ledger is not None:
                        ledger.point_start(pt.cache_key(), pt.label)
                    recv, send = self._ctx.Pipe(duplex=False)
                    proc = self._ctx.Process(
                        target=_worker_main,
                        args=(send, pt, self.use_cache, env, span_ctx),
                        daemon=True)
                    proc.start()
                    send.close()
                    live[proc] = (pt, time.monotonic(), recv)
                # Sleep until a worker reports (or a short tick, so
                # timeouts and crashes are noticed promptly).
                mp_connection.wait(
                    [conn for _, _, conn in live.values()], timeout=0.05)
                now = time.monotonic()
                for proc in list(live):
                    pt, started, conn = live[proc]
                    outcome = self._poll_one(proc, pt, started, conn, now)
                    if outcome is not None:
                        del live[proc]
                        conn.close()
                        emit(outcome)
        finally:
            for proc, (pt, _, conn) in live.items():
                proc.terminate()
                proc.join()
                conn.close()

    def _poll_one(self, proc, pt: Point, started: float, conn,
                  now: float) -> Optional[PointOutcome]:
        """One scheduling decision for one live worker; ``None`` means
        still running."""
        elapsed = now - started
        if conn.poll(0):
            meta: Dict = {}
            try:
                kind, value, meta = conn.recv()
            except (EOFError, OSError):
                kind, value = None, None
            proc.join()
            if kind == "ok":
                return PointOutcome(pt, "done", payload=value,
                                    elapsed=elapsed,
                                    rusage=meta.get("rusage"),
                                    spans=meta.get("spans"))
            if kind == "error":
                return PointOutcome(pt, "failed", error=value,
                                    elapsed=elapsed,
                                    rusage=meta.get("rusage"),
                                    spans=meta.get("spans"))
            return PointOutcome(
                pt, "failed", elapsed=elapsed,
                error=f"worker died without reporting "
                      f"(exitcode {proc.exitcode})")
        if not proc.is_alive():
            proc.join()
            return PointOutcome(
                pt, "failed", elapsed=elapsed,
                error=f"worker crashed (exitcode {proc.exitcode})")
        if self.timeout is not None and elapsed > self.timeout:
            proc.terminate()
            proc.join()
            return PointOutcome(
                pt, "timeout", elapsed=elapsed,
                error=f"point exceeded {self.timeout:g}s timeout")
        return None


def execute_plan(spec: SweepSpec, engine: Optional[_EngineBase] = None,
                 **run_kwargs) -> Any:
    """Expand ``spec``, run it on ``engine`` (default: serial), and
    apply the plan's reduction (if any) to the outcome map."""
    engine = engine or SerialEngine()
    outcomes = engine.run(spec.points(), **run_kwargs)
    return spec.reduce(outcomes) if spec.reduce is not None else outcomes
