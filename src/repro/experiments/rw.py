"""Register-window experiments: Figures 4, 5 and 6 (Section 4.1).

Each figure sweeps physical register file size from 64 (the number of
architectural registers) to 256 (architectural plus the reorder
buffer) across four machines: the non-windowed baseline, a
conventional trap-based register-window machine, an idealised window
machine, and VCA with windows.  Values are geometric means over the
Table 2 benchmark suite, normalized per-benchmark to the dual-port
baseline with 256 physical registers — exactly the paper's
normalisation.

Each figure is a declarative :class:`~repro.experiments.plan.SweepSpec`
(the (model × size × benchmark) grid, the normalisation-reference
points, and the figure's reduction), so any execution engine — serial
or parallel, journaled or not — can run it; the ``figN_*`` functions
remain the one-call convenience wrappers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import geomean
from repro.workloads.profiles import RW_BENCHMARKS

from .engine import SerialEngine, execute_plan
from .plan import Point, SweepSpec
from .runner import RunResult, default_scale, path_ratio

#: The four machines of Figures 4-6, in the paper's legend order.
RW_MODELS = ("baseline", "ideal-rw", "conventional-rw", "vca-rw")

#: Register-file sizes swept in Figures 4-6.
REG_SIZES = (64, 128, 192, 256)

Series = Dict[str, Dict[int, Optional[float]]]

Grid = Dict[Tuple[str, int], List[RunResult]]


def _accesses_per_work(r: RunResult) -> float:
    """DL1 accesses per flat-ABI-equivalent instruction."""
    ratio = 1.0
    if r.model != "baseline":
        ratio = path_ratio(r.benches[0])
    work = sum(r.committed) / ratio
    return r.dl1_accesses / work


def rw_plan(models: Sequence[str] = RW_MODELS,
            sizes: Sequence[int] = REG_SIZES,
            benches: Sequence[str] = RW_BENCHMARKS,
            dl1_ports: int = 2,
            scale: Optional[float] = None) -> SweepSpec:
    """The raw (model × size × benchmark) grid as a sweep plan."""
    scale = default_scale() if scale is None else scale
    return SweepSpec.build(
        f"rw-ports{dl1_ports}",
        axes={"model": tuple(models), "phys_regs": tuple(sizes),
              "bench": tuple(benches)},
        dl1_ports=dl1_ports, scale=scale)


def reference_points(benches: Sequence[str],
                     scale: float) -> List[Point]:
    """Per-benchmark normalisation references: the baseline at 256
    registers and two DL1 ports."""
    return [Point.run("baseline", (b,), 256, dl1_ports=2, scale=scale)
            for b in benches]


def _grid_from(outcomes, models: Sequence[str], sizes: Sequence[int],
               benches: Sequence[str], dl1_ports: int,
               scale: float) -> Grid:
    """Index an engine's outcome map back into the classic
    ``{(model, size): [RunResult per benchmark]}`` shape."""
    return {
        (model, size): [
            outcomes[Point.run(model, (b,), size, dl1_ports=dl1_ports,
                               scale=scale)].result()
            for b in benches]
        for model in models for size in sizes}


def rw_sweep(models: Sequence[str] = RW_MODELS,
             sizes: Sequence[int] = REG_SIZES,
             benches: Sequence[str] = RW_BENCHMARKS,
             dl1_ports: int = 2,
             scale: Optional[float] = None,
             engine=None) -> Grid:
    """All (model, size) points of the register-window study."""
    scale = default_scale() if scale is None else scale
    plan = rw_plan(models, sizes, benches, dl1_ports, scale)
    outcomes = (engine or SerialEngine()).run(plan.points())
    return _grid_from(outcomes, models, sizes, benches, dl1_ports, scale)


def _normalize(sweep: Grid, refs: List[RunResult], value_fn) -> Series:
    series: Series = {}
    for (model, size), results in sweep.items():
        col = series.setdefault(model, {})
        if any(r.unrunnable for r in results):
            col[size] = None
            continue
        ratios = [value_fn(r) / value_fn(ref)
                  for r, ref in zip(results, refs)]
        col[size] = geomean(ratios)
    return series


def _figure_plan(name: str, value_fn, benches: Sequence[str],
                 sizes: Sequence[int], dl1_ports: int,
                 scale: Optional[float],
                 with_ratios: bool = False) -> SweepSpec:
    """One Section 4.1 figure as a plan: grid + reference points, with
    a reduction to the figure's normalized series."""
    scale = default_scale() if scale is None else scale
    benches = tuple(benches)
    sizes = tuple(sizes)
    refs = reference_points(benches, scale)
    extra: List[Point] = list(refs)
    if with_ratios:
        # Path-length ratios (Table 2) used by the reduction; running
        # them as plan points parallelises and pre-caches them.
        extra.extend(Point.ratio(b) for b in benches)

    def reduce(outcomes) -> Series:
        sweep = _grid_from(outcomes, RW_MODELS, sizes, benches,
                           dl1_ports, scale)
        ref_results = [outcomes[p].result() for p in refs]
        return _normalize(sweep, ref_results, value_fn)

    grid = rw_plan(RW_MODELS, sizes, benches, dl1_ports, scale)
    return SweepSpec.build(name, axes=dict(grid.axes), extra=extra,
                           reduce=reduce, **dict(grid.base))


def fig4_plan(benches: Sequence[str] = RW_BENCHMARKS,
              sizes: Sequence[int] = REG_SIZES,
              scale: Optional[float] = None) -> SweepSpec:
    return _figure_plan("fig4", lambda r: r.cycles, benches, sizes,
                        dl1_ports=2, scale=scale)


def fig5_plan(benches: Sequence[str] = RW_BENCHMARKS,
              sizes: Sequence[int] = REG_SIZES,
              scale: Optional[float] = None) -> SweepSpec:
    return _figure_plan("fig5", _accesses_per_work, benches, sizes,
                        dl1_ports=2, scale=scale, with_ratios=True)


def fig6_plan(benches: Sequence[str] = RW_BENCHMARKS,
              sizes: Sequence[int] = REG_SIZES,
              scale: Optional[float] = None) -> SweepSpec:
    return _figure_plan("fig6", lambda r: r.cycles, benches, sizes,
                        dl1_ports=1, scale=scale)


def fig4_execution_time(benches: Sequence[str] = RW_BENCHMARKS,
                        sizes: Sequence[int] = REG_SIZES,
                        scale: Optional[float] = None,
                        engine=None) -> Series:
    """Figure 4: normalized execution time vs physical registers."""
    return execute_plan(fig4_plan(benches, sizes, scale), engine)


def fig5_cache_accesses(benches: Sequence[str] = RW_BENCHMARKS,
                        sizes: Sequence[int] = REG_SIZES,
                        scale: Optional[float] = None,
                        engine=None) -> Series:
    """Figure 5: normalized data-cache accesses vs physical registers."""
    return execute_plan(fig5_plan(benches, sizes, scale), engine)


def fig6_single_port(benches: Sequence[str] = RW_BENCHMARKS,
                     sizes: Sequence[int] = REG_SIZES,
                     scale: Optional[float] = None,
                     engine=None) -> Series:
    """Figure 6: single-DL1-port execution time, normalized to the
    dual-port baseline at 256 registers."""
    return execute_plan(fig6_plan(benches, sizes, scale), engine)
