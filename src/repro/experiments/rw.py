"""Register-window experiments: Figures 4, 5 and 6 (Section 4.1).

Each figure sweeps physical register file size from 64 (the number of
architectural registers) to 256 (architectural plus the reorder
buffer) across four machines: the non-windowed baseline, a
conventional trap-based register-window machine, an idealised window
machine, and VCA with windows.  Values are geometric means over the
Table 2 benchmark suite, normalized per-benchmark to the dual-port
baseline with 256 physical registers — exactly the paper's
normalisation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import geomean
from repro.workloads.profiles import RW_BENCHMARKS

from .runner import RunResult, default_scale, path_ratio, run_point

#: The four machines of Figures 4-6, in the paper's legend order.
RW_MODELS = ("baseline", "ideal-rw", "conventional-rw", "vca-rw")

#: Register-file sizes swept in Figures 4-6.
REG_SIZES = (64, 128, 192, 256)

Series = Dict[str, Dict[int, Optional[float]]]


def _accesses_per_work(r: RunResult) -> float:
    """DL1 accesses per flat-ABI-equivalent instruction."""
    ratio = 1.0
    if r.model != "baseline":
        ratio = path_ratio(r.benches[0])
    work = sum(r.committed) / ratio
    return r.dl1_accesses / work


def rw_sweep(models: Sequence[str] = RW_MODELS,
             sizes: Sequence[int] = REG_SIZES,
             benches: Sequence[str] = RW_BENCHMARKS,
             dl1_ports: int = 2,
             scale: Optional[float] = None,
             ) -> Dict[Tuple[str, int], List[RunResult]]:
    """All (model, size) points of the register-window study."""
    scale = default_scale() if scale is None else scale
    out: Dict[Tuple[str, int], List[RunResult]] = {}
    for model in models:
        for size in sizes:
            out[(model, size)] = [
                run_point(model, (b,), size, dl1_ports=dl1_ports,
                          scale=scale) for b in benches]
    return out


def _reference(benches: Sequence[str],
               scale: Optional[float]) -> List[RunResult]:
    """Per-benchmark baseline at 256 registers, two DL1 ports."""
    scale = default_scale() if scale is None else scale
    return [run_point("baseline", (b,), 256, dl1_ports=2, scale=scale)
            for b in benches]


def _normalize(sweep: Dict[Tuple[str, int], List[RunResult]],
               refs: List[RunResult], value_fn) -> Series:
    series: Series = {}
    for (model, size), results in sweep.items():
        col = series.setdefault(model, {})
        if any(r.unrunnable for r in results):
            col[size] = None
            continue
        ratios = [value_fn(r) / value_fn(ref)
                  for r, ref in zip(results, refs)]
        col[size] = geomean(ratios)
    return series


def fig4_execution_time(benches: Sequence[str] = RW_BENCHMARKS,
                        sizes: Sequence[int] = REG_SIZES,
                        scale: Optional[float] = None) -> Series:
    """Figure 4: normalized execution time vs physical registers."""
    sweep = rw_sweep(sizes=sizes, benches=benches, scale=scale)
    refs = _reference(benches, scale)
    return _normalize(sweep, refs, lambda r: r.cycles)


def fig5_cache_accesses(benches: Sequence[str] = RW_BENCHMARKS,
                        sizes: Sequence[int] = REG_SIZES,
                        scale: Optional[float] = None) -> Series:
    """Figure 5: normalized data-cache accesses vs physical registers."""
    sweep = rw_sweep(sizes=sizes, benches=benches, scale=scale)
    refs = _reference(benches, scale)
    return _normalize(sweep, refs, _accesses_per_work)


def fig6_single_port(benches: Sequence[str] = RW_BENCHMARKS,
                     sizes: Sequence[int] = REG_SIZES,
                     scale: Optional[float] = None) -> Series:
    """Figure 6: single-DL1-port execution time, normalized to the
    dual-port baseline at 256 registers."""
    sweep = rw_sweep(sizes=sizes, benches=benches, dl1_ports=1,
                     scale=scale)
    refs = _reference(benches, scale)
    return _normalize(sweep, refs, lambda r: r.cycles)
