"""SMT experiments: Figures 7 and 8 and the Section 4.3 cache-traffic
comparison.

Workload construction follows Section 3.2: every benchmark is
characterised by a statistics vector from a single-thread baseline
run; candidate multithreaded workloads (all 253 pairs, and four-thread
combinations built from pairs of pairs) are clustered with PCA +
linkage clustering, and the workload nearest each cluster centroid is
simulated.  Speedups are weighted per the paper: each thread's IPC is
divided by the same benchmark's IPC running alone on the baseline with
256 physical registers.  Windowed binaries are converted to
flat-equivalent instruction counts through their Table 2 path-length
ratio so that speedups compare equal work.

Each study batches all of its simulation points — every series' grid,
the single-thread references, and the path-length ratios windowed
models need — into one engine run, so a parallel engine overlaps
everything; workload selection (which depends on the characterisation
vectors) is the only sequencing barrier.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.clustering import (
    all_pairs, all_quads, cluster_and_select, workload_vector,
)
from repro.workloads.profiles import ALL_BENCHMARKS

from .engine import SerialEngine
from .plan import Point, SweepSpec
from .runner import RunResult, default_scale, path_ratio

#: Register-file sizes swept in Figures 7-8.
SMT_SIZES = (64, 128, 192, 256, 320, 384, 448)

Series = Dict[str, Dict[int, Optional[float]]]

Workload = Tuple[str, ...]


def _workload_counts() -> Tuple[int, int, int]:
    """(1T, 2T, 4T) representative-workload counts.

    The paper simulates 43 two-thread and 127 four-thread cluster
    representatives of 100M instructions each; at our scale we default
    to fewer representatives (override with REPRO_SMT_K, e.g.
    ``REPRO_SMT_K=5,8,6``).
    """
    env = os.environ.get("REPRO_SMT_K")
    if env:
        k1, k2, k4 = (int(v) for v in env.split(","))
        return k1, k2, k4
    return 5, 6, 4


def vectors_plan(scale: Optional[float] = None) -> SweepSpec:
    """Single-thread characterisation runs (baseline, 256 regs) as a
    plan."""
    scale = default_scale() if scale is None else scale
    return SweepSpec.build(
        "smt-vectors", axes={"bench": ALL_BENCHMARKS},
        model="baseline", phys_regs=256, scale=scale)


def _ref_point(bench: str, scale: float) -> Point:
    return Point.run("baseline", (bench,), 256, scale=scale)


def benchmark_vectors(scale: Optional[float] = None, engine=None
                      ) -> Dict[str, np.ndarray]:
    """Single-thread characterisation vectors (baseline, 256 regs)."""
    scale = default_scale() if scale is None else scale
    outcomes = (engine or SerialEngine()).run(
        vectors_plan(scale).points())
    return {name: np.array(
                outcomes[_ref_point(name, scale)].result().stats_vector)
            for name in ALL_BENCHMARKS}


def select_workloads(n_threads: int, k: int,
                     scale: Optional[float] = None,
                     engine=None) -> List[Workload]:
    """Cluster candidate workloads and return the representatives."""
    vectors = benchmark_vectors(scale, engine)
    if n_threads == 1:
        candidates: List[Workload] = [(b,) for b in ALL_BENCHMARKS]
    elif n_threads == 2:
        candidates = [tuple(p) for p in all_pairs(ALL_BENCHMARKS)]
    elif n_threads == 4:
        pairs = all_pairs(ALL_BENCHMARKS)
        candidates = [tuple(q) for q in all_quads(pairs, limit=127)]
    else:
        raise ValueError("n_threads must be 1, 2 or 4")
    matrix = np.stack([
        workload_vector([vectors[b] for b in wl]) for wl in candidates])
    result = cluster_and_select(matrix, k)
    return [candidates[i] for i in result.representatives]


def reference_ipcs(scale: Optional[float] = None, engine=None
                   ) -> Dict[str, float]:
    """Single-thread baseline (256 regs) IPC per benchmark."""
    scale = default_scale() if scale is None else scale
    outcomes = (engine or SerialEngine()).run(
        vectors_plan(scale).points())
    return {name: outcomes[_ref_point(name, scale)].result().ipc
            for name in ALL_BENCHMARKS}


def _flat_equiv_ipc(r: RunResult, tid: int, windowed: bool) -> float:
    ipc = r.thread_ipcs[tid]
    if windowed:
        ipc /= path_ratio(r.benches[tid])
    return ipc


def weighted_speedup_of(r: RunResult, refs: Dict[str, float],
                        windowed: bool) -> float:
    """Paper-style weighted speedup of one run against the
    single-thread baseline references."""
    return sum(_flat_equiv_ipc(r, i, windowed) / refs[b]
               for i, b in enumerate(r.benches))


def smt_plan(model: str, workloads: Sequence[Workload],
             sizes: Sequence[int] = SMT_SIZES,
             scale: Optional[float] = None) -> SweepSpec:
    """One machine's (size × workload) speedup grid as a plan."""
    scale = default_scale() if scale is None else scale
    return SweepSpec.build(
        f"smt-{model}",
        axes={"phys_regs": tuple(sizes),
              "workload": tuple(tuple(w) for w in workloads)},
        model=model, scale=scale)


def _series_points(series: Dict[str, Tuple[str, Sequence[Workload]]],
                   sizes: Sequence[int], scale: float) -> List[Point]:
    """Every point a set of speedup series needs: the grids, the
    single-thread references, and path ratios for windowed models."""
    points: List[Point] = [_ref_point(b, scale) for b in ALL_BENCHMARKS]
    for model, workloads in series.values():
        points.extend(smt_plan(model, workloads, sizes, scale).points())
        if model.endswith("-rw"):
            points.extend(Point.ratio(b)
                          for wl in workloads for b in wl)
    return points


def _speedup_from(outcomes, model: str, workloads: Sequence[Workload],
                  sizes: Sequence[int], scale: float,
                  refs: Dict[str, float]) -> Dict[int, Optional[float]]:
    """Mean weighted speedup per size, from resolved outcomes; any
    unrunnable workload blanks the whole size (the paper's "No
    Baseline" regions)."""
    windowed = model.endswith("-rw")
    out: Dict[int, Optional[float]] = {}
    for size in sizes:
        results = [outcomes[Point.run(model, wl, size,
                                      scale=scale)].result()
                   for wl in workloads]
        if any(r.unrunnable for r in results):
            out[size] = None
            continue
        speedups = [weighted_speedup_of(r, refs, windowed)
                    for r in results]
        out[size] = sum(speedups) / len(speedups)
    return out


def _speedup_series_batch(
        series: Dict[str, Tuple[str, Sequence[Workload]]],
        sizes: Sequence[int], scale: Optional[float],
        engine=None) -> Series:
    """Run every series' points in one engine batch, then reduce."""
    scale = default_scale() if scale is None else scale
    engine = engine or SerialEngine()
    outcomes = engine.run(_series_points(series, sizes, scale))
    refs = {b: outcomes[_ref_point(b, scale)].result().ipc
            for b in ALL_BENCHMARKS}
    return {label: _speedup_from(outcomes, model, workloads, sizes,
                                 scale, refs)
            for label, (model, workloads) in series.items()}


def smt_speedup_series(model: str, workloads: Sequence[Workload],
                       sizes: Sequence[int] = SMT_SIZES,
                       scale: Optional[float] = None,
                       engine=None) -> Dict[int, Optional[float]]:
    """Mean weighted speedup per register-file size for one machine."""
    return _speedup_series_batch({"series": (model, workloads)},
                                 sizes, scale, engine)["series"]


def fig7_smt(sizes: Sequence[int] = SMT_SIZES,
             scale: Optional[float] = None, engine=None) -> Series:
    """Figure 7: SMT weighted speedup, VCA vs baseline, 2T and 4T."""
    _, k2, k4 = _workload_counts()
    wl2 = select_workloads(2, k2, scale, engine)
    wl4 = select_workloads(4, k4, scale, engine)
    return _speedup_series_batch({
        "vca 2T": ("vca", wl2),
        "vca 4T": ("vca", wl4),
        "baseline 2T": ("baseline", wl2),
        "baseline 4T": ("baseline", wl4),
    }, sizes, scale, engine)


def fig8_smt_rw(sizes: Sequence[int] = SMT_SIZES,
                scale: Optional[float] = None, engine=None) -> Series:
    """Figure 8: register windows + SMT on VCA vs the non-windowed
    baseline, at 1, 2 and 4 threads."""
    k1, k2, k4 = _workload_counts()
    wl1 = select_workloads(1, k1, scale, engine)
    wl2 = select_workloads(2, k2, scale, engine)
    wl4 = select_workloads(4, k4, scale, engine)
    return _speedup_series_batch({
        "vca-rw 1T": ("vca-rw", wl1),
        "vca-rw 2T": ("vca-rw", wl2),
        "vca-rw 4T": ("vca-rw", wl4),
        "baseline 1T": ("baseline", wl1),
        "baseline 2T": ("baseline", wl2),
        "baseline 4T": ("baseline", wl4),
    }, sizes, scale, engine)


def sec43_cache_traffic(scale: Optional[float] = None,
                        engine=None) -> Dict[str, float]:
    """Section 4.3: data-cache accesses per unit of work for the
    four-thread machines the text compares.

    Returns accesses per flat-equivalent instruction for: the baseline
    with 448 registers, non-windowed VCA with 192 registers, and
    windowed VCA with 192 registers — the paper reports +24% for
    non-windowed VCA and 5% *fewer* accesses once windows are added.
    """
    scale = default_scale() if scale is None else scale
    engine = engine or SerialEngine()
    _, _, k4 = _workload_counts()
    wl4 = select_workloads(4, k4, scale, engine)

    machines = [("baseline 4T @448", "baseline", 448),
                ("vca 4T @192", "vca", 192),
                ("vca-rw 4T @192", "vca-rw", 192)]
    points = [Point.run(model, wl, size, scale=scale)
              for _, model, size in machines for wl in wl4]
    points += [Point.ratio(b) for wl in wl4 for b in wl]
    outcomes = engine.run(points)

    def apw(model: str, size: int) -> float:
        windowed = model.endswith("-rw")
        num = den = 0.0
        for wl in wl4:
            r = outcomes[Point.run(model, wl, size,
                                   scale=scale)].result()
            if r.unrunnable:
                raise RuntimeError(f"{model}@{size} unrunnable")
            work = sum(
                c / (path_ratio(b) if windowed else 1.0)
                for c, b in zip(r.committed, r.benches))
            num += r.dl1_accesses
            den += work
        return num / den

    return {label: apw(model, size) for label, model, size in machines}
