"""``repro bench diff``: detect cycle-loop performance regressions.

``benchmarks/test_perf_cycle_loop.py`` appends a record to
``BENCH_perf.json`` every time it runs, accumulating a history of
cycles-per-second measurements.  This module re-measures the same
workloads fresh (best-of-N, same model/scale as the benchmark) and
compares against the history baseline — the median of the most recent
entries, which is robust to one outlier run on a noisy machine.  A
benchmark is a regression when its fresh throughput falls more than
``threshold`` below that baseline.

Exit codes: 0 (no regression), 1 (regression past threshold), 2 (no
usable history — nothing to diff against).  ``report_only`` forces
exit 0 so CI can surface the numbers without gating merges on a
shared runner's timer noise.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.config import MachineConfig
from repro.models.factory import build_machine, model_abi
from repro.workloads.generator import benchmark_program

__all__ = [
    "DEFAULT_HISTORY", "default_history_path", "measure_fresh",
    "history_baseline", "diff_rows", "render_diff", "bench_diff",
]

#: The benchmark set BENCH_perf.json history records.
BENCHES = ("fib", "gzip_graphic")
MODEL = "vca-rw"
SCALE = 4.0
DEFAULT_HISTORY = "BENCH_perf.json"
#: History entries (most recent first) the baseline median spans.
BASELINE_WINDOW = 5


def default_history_path() -> Path:
    """``BENCH_perf.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / DEFAULT_HISTORY


def measure_fresh(benches: Sequence[str] = BENCHES, rounds: int = 3,
                  scale: float = SCALE,
                  model: str = MODEL) -> Dict[str, Dict]:
    """Best-of-``rounds`` cycles/sec per benchmark, matching the
    measurement loop of ``benchmarks/test_perf_cycle_loop.py``."""
    out: Dict[str, Dict] = {}
    cfg = MachineConfig.baseline().with_(
        phys_regs=256, dl1_ports=2, n_threads=1)
    abi = model_abi(model)
    for bench in benches:
        best = 0.0
        cycles = 0
        for _ in range(max(1, rounds)):
            prog = benchmark_program(bench, abi=abi, scale=scale,
                                     seed=0)
            machine = build_machine(model, cfg, [prog])
            t0 = time.perf_counter()
            stats = machine.run()
            dt = time.perf_counter() - t0
            cycles = stats.cycles
            best = max(best, cycles / dt if dt else 0.0)
        out[bench] = {"cycles": cycles, "cycles_per_sec": best}
    return out


def load_history(path) -> List[Dict]:
    """The BENCH_perf.json entry list (empty on any read problem)."""
    try:
        history = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return []
    return history if isinstance(history, list) else []


def history_baseline(history: List[Dict], bench: str,
                     window: int = BASELINE_WINDOW
                     ) -> Optional[float]:
    """Median cycles/sec over the last ``window`` history entries
    that measured ``bench`` (``None`` when no entry did)."""
    values = []
    for entry in reversed(history):
        rec = (entry.get("results") or {}).get(bench)
        if isinstance(rec, dict) and rec.get("cycles_per_sec"):
            values.append(float(rec["cycles_per_sec"]))
        if len(values) >= window:
            break
    return statistics.median(values) if values else None


def diff_rows(fresh: Dict[str, Dict], history: List[Dict],
              threshold: float) -> List[Dict]:
    """One comparison row per freshly measured benchmark."""
    rows = []
    for bench, rec in sorted(fresh.items()):
        base = history_baseline(history, bench)
        cps = float(rec["cycles_per_sec"])
        ratio = cps / base if base else None
        rows.append({
            "bench": bench,
            "fresh_cps": cps,
            "baseline_cps": base,
            "ratio": ratio,
            "regressed": (ratio is not None
                          and ratio < 1.0 - threshold),
        })
    return rows


def render_diff(rows: List[Dict], threshold: float) -> str:
    lines = [f"{'benchmark':<16}{'fresh c/s':>12}{'baseline':>12}"
             f"{'ratio':>8}  verdict"]
    for r in rows:
        if r["baseline_cps"] is None:
            verdict, base, ratio = "no history", "--", "--"
        else:
            verdict = ("REGRESSED" if r["regressed"] else "ok")
            base = f"{r['baseline_cps']:,.0f}"
            ratio = f"{r['ratio']:.2f}x"
        lines.append(f"{r['bench']:<16}{r['fresh_cps']:>12,.0f}"
                     f"{base:>12}{ratio:>8}  {verdict}")
    lines.append(f"(threshold: >{threshold:.0%} below the median of "
                 f"the last {BASELINE_WINDOW} history entries)")
    return "\n".join(lines)


def bench_diff(history_path=None, rounds: int = 3,
               threshold: float = 0.15, report_only: bool = False,
               json_out=None, out=print) -> int:
    """Run the comparison end to end; returns the process exit code."""
    path = Path(history_path) if history_path else default_history_path()
    history = load_history(path)
    fresh = measure_fresh(rounds=rounds)
    rows = diff_rows(fresh, history, threshold)
    out(f"bench diff: history {path} ({len(history)} entries)")
    out(render_diff(rows, threshold))
    if json_out:
        Path(json_out).write_text(json.dumps({
            "schema": "repro.bench-diff", "schema_version": 1,
            "history": str(path), "history_entries": len(history),
            "threshold": threshold, "rows": rows,
        }, indent=2, sort_keys=True))
        out(f"(wrote {json_out})")
    if all(r["baseline_cps"] is None for r in rows):
        out("bench diff: no usable history; run the benchmarks "
            "(pytest benchmarks/) to seed BENCH_perf.json")
        return 0 if report_only else 2
    regressed = [r["bench"] for r in rows if r["regressed"]]
    if regressed:
        out(f"bench diff: REGRESSION in {', '.join(regressed)}")
        return 0 if report_only else 1
    return 0
