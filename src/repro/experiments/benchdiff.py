"""``repro bench diff``: detect cycle-loop performance regressions.

``benchmarks/test_perf_cycle_loop.py`` appends a record to
``BENCH_perf.json`` every time it runs, accumulating a history of
cycles-per-second measurements; ``benchmarks/test_perf_functional.py``
does the same for the functional interpreter's instructions-per-second
(one row per execution mode, keyed ``functional-interp`` /
``functional-blocks``).  This module re-measures the same workloads
fresh (best-of-N, same model/scale as the benchmarks) and compares
against the history baseline — the median of the most recent entries,
which is robust to one outlier run on a noisy machine.  A benchmark is
a regression when its fresh throughput falls more than ``threshold``
below that baseline.  Each row carries its value field
(``cycles_per_sec`` for detailed-model rows, ``instructions_per_sec``
for functional rows) so the two kinds of throughput are never compared
against each other's history.

Exit codes: 0 (no regression), 1 (regression past threshold), 2 (no
usable history — nothing to diff against).  ``report_only`` forces
exit 0 so CI can surface the numbers without gating merges on a
shared runner's timer noise.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.config import MachineConfig
from repro.models.factory import build_machine, model_abi
from repro.workloads.generator import benchmark_program

__all__ = [
    "DEFAULT_HISTORY", "default_history_path", "measure_fresh",
    "measure_functional", "history_baseline", "diff_rows",
    "render_diff", "bench_diff",
]

#: The benchmark set BENCH_perf.json history records.
BENCHES = ("fib", "gzip_graphic")
MODEL = "vca-rw"
SCALE = 4.0
DEFAULT_HISTORY = "BENCH_perf.json"
#: History entries (most recent first) the baseline median spans.
BASELINE_WINDOW = 5
#: Functional-throughput rows: the workload FunctionalSim is timed on
#: and the execution modes measured (row key ``functional-<mode>``).
FUNCTIONAL_BENCH = "fib"
FUNCTIONAL_MODES_MEASURED = ("interp", "blocks")
#: The per-row value fields, in probe order: detailed-model rows carry
#: ``cycles_per_sec``, functional rows ``instructions_per_sec``.
VALUE_FIELDS = ("cycles_per_sec", "instructions_per_sec")


def default_history_path() -> Path:
    """``BENCH_perf.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / DEFAULT_HISTORY


def measure_fresh(benches: Sequence[str] = BENCHES, rounds: int = 3,
                  scale: float = SCALE,
                  model: str = MODEL) -> Dict[str, Dict]:
    """Best-of-``rounds`` cycles/sec per benchmark, matching the
    measurement loop of ``benchmarks/test_perf_cycle_loop.py``."""
    out: Dict[str, Dict] = {}
    cfg = MachineConfig.baseline().with_(
        phys_regs=256, dl1_ports=2, n_threads=1)
    abi = model_abi(model)
    for bench in benches:
        best = 0.0
        cycles = 0
        for _ in range(max(1, rounds)):
            prog = benchmark_program(bench, abi=abi, scale=scale,
                                     seed=0)
            machine = build_machine(model, cfg, [prog])
            t0 = time.perf_counter()
            stats = machine.run()
            dt = time.perf_counter() - t0
            cycles = stats.cycles
            best = max(best, cycles / dt if dt else 0.0)
        out[bench] = {"cycles": cycles, "cycles_per_sec": best}
    return out


def measure_functional(rounds: int = 3, scale: float = SCALE,
                       bench: str = FUNCTIONAL_BENCH) -> Dict[str, Dict]:
    """Best-of-``rounds`` functional instructions/sec per execution
    mode, matching ``benchmarks/test_perf_functional.py``.  Each mode
    constructs a fresh :class:`FunctionalSim` so the ``blocks`` row
    includes first-visit decode cost (the program — and therefore its
    block table — is cached across rounds, so later rounds replay
    warm; best-of keeps the warm number, which is what the history
    tracks)."""
    from repro.functional import FunctionalSim

    out: Dict[str, Dict] = {}
    for mode in FUNCTIONAL_MODES_MEASURED:
        best = 0.0
        instructions = 0
        for _ in range(max(1, rounds)):
            prog = benchmark_program(bench, abi="windowed",
                                     scale=scale, seed=0)
            sim = FunctionalSim(prog, mode=mode)
            t0 = time.perf_counter()
            stats = sim.run()
            dt = time.perf_counter() - t0
            instructions = stats.instructions
            best = max(best, instructions / dt if dt else 0.0)
        out[f"functional-{mode}"] = {
            "instructions": instructions,
            "instructions_per_sec": best,
        }
    return out


def value_field(rec: Dict) -> str:
    """The throughput field a result record carries (first of
    :data:`VALUE_FIELDS` present; defaults to cycles/sec)."""
    for field in VALUE_FIELDS:
        if rec.get(field):
            return field
    return VALUE_FIELDS[0]


def load_history(path) -> List[Dict]:
    """The BENCH_perf.json entry list (empty on any read problem)."""
    try:
        history = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return []
    return history if isinstance(history, list) else []


def history_baseline(history: List[Dict], bench: str,
                     window: int = BASELINE_WINDOW,
                     field: str = "cycles_per_sec"
                     ) -> Optional[float]:
    """Median throughput (``field``) over the last ``window`` history
    entries that measured ``bench`` (``None`` when no entry did)."""
    values = []
    for entry in reversed(history):
        rec = (entry.get("results") or {}).get(bench)
        if isinstance(rec, dict) and rec.get(field):
            values.append(float(rec[field]))
        if len(values) >= window:
            break
    return statistics.median(values) if values else None


def diff_rows(fresh: Dict[str, Dict], history: List[Dict],
              threshold: float) -> List[Dict]:
    """One comparison row per freshly measured benchmark.  Rows keep
    the legacy ``fresh_cps``/``baseline_cps`` keys for cycle-loop
    benchmarks; every row also carries generic ``fresh``/``baseline``
    plus the ``field`` it measures."""
    rows = []
    for bench, rec in sorted(fresh.items()):
        field = value_field(rec)
        base = history_baseline(history, bench, field=field)
        val = float(rec[field])
        ratio = val / base if base else None
        row = {
            "bench": bench,
            "field": field,
            "fresh": val,
            "baseline": base,
            "ratio": ratio,
            "regressed": (ratio is not None
                          and ratio < 1.0 - threshold),
        }
        if field == "cycles_per_sec":
            row["fresh_cps"] = val
            row["baseline_cps"] = base
        rows.append(row)
    return rows


def render_diff(rows: List[Dict], threshold: float) -> str:
    lines = [f"{'benchmark':<20}{'fresh':>14}{'baseline':>12}"
             f"{'ratio':>8}  verdict"]
    for r in rows:
        unit = ("i/s" if r["field"] == "instructions_per_sec"
                else "c/s")
        if r["baseline"] is None:
            verdict, base, ratio = "no history", "--", "--"
        else:
            verdict = ("REGRESSED" if r["regressed"] else "ok")
            base = f"{r['baseline']:,.0f}"
            ratio = f"{r['ratio']:.2f}x"
        fresh = f"{r['fresh']:,.0f} {unit}"
        lines.append(f"{r['bench']:<20}{fresh:>14}"
                     f"{base:>12}{ratio:>8}  {verdict}")
    lines.append(f"(threshold: >{threshold:.0%} below the median of "
                 f"the last {BASELINE_WINDOW} history entries)")
    return "\n".join(lines)


def bench_diff(history_path=None, rounds: int = 3,
               threshold: float = 0.15, report_only: bool = False,
               json_out=None, out=print) -> int:
    """Run the comparison end to end; returns the process exit code."""
    path = Path(history_path) if history_path else default_history_path()
    history = load_history(path)
    fresh = dict(measure_fresh(rounds=rounds))
    fresh.update(measure_functional(rounds=rounds))
    rows = diff_rows(fresh, history, threshold)
    out(f"bench diff: history {path} ({len(history)} entries)")
    out(render_diff(rows, threshold))
    if json_out:
        Path(json_out).write_text(json.dumps({
            "schema": "repro.bench-diff", "schema_version": 1,
            "history": str(path), "history_entries": len(history),
            "threshold": threshold, "rows": rows,
        }, indent=2, sort_keys=True))
        out(f"(wrote {json_out})")
    if all(r["baseline"] is None for r in rows):
        out("bench diff: no usable history; run the benchmarks "
            "(pytest benchmarks/) to seed BENCH_perf.json")
        return 0 if report_only else 2
    regressed = [r["bench"] for r in rows if r["regressed"]]
    if regressed:
        out(f"bench diff: REGRESSION in {', '.join(regressed)}")
        return 0 if report_only else 1
    return 0
