"""Experiment drivers that regenerate every table and figure of the
paper's evaluation (Section 4)."""

from .report import render_series, render_table
from .runner import RunResult, default_scale, path_ratio, run_point
from .rw import (
    REG_SIZES, RW_MODELS, fig4_execution_time, fig5_cache_accesses,
    fig6_single_port, rw_sweep,
)
from .smt import (
    SMT_SIZES, fig7_smt, fig8_smt_rw, sec43_cache_traffic,
    select_workloads, smt_speedup_series, weighted_speedup_of,
)

__all__ = [
    "render_series", "render_table", "RunResult", "default_scale",
    "path_ratio", "run_point", "REG_SIZES", "RW_MODELS",
    "fig4_execution_time", "fig5_cache_accesses", "fig6_single_port",
    "rw_sweep", "SMT_SIZES", "fig7_smt", "fig8_smt_rw",
    "sec43_cache_traffic", "select_workloads", "smt_speedup_series",
    "weighted_speedup_of",
]
