"""Experiment drivers that regenerate every table and figure of the
paper's evaluation (Section 4), built on declarative sweep plans
(:mod:`repro.experiments.plan`) executed by pluggable serial/parallel
engines (:mod:`repro.experiments.engine`)."""

from .engine import (
    EngineError, ParallelEngine, PointOutcome, SerialEngine,
    SweepProgress, execute_plan,
)
from .plan import Point, SweepSpec, unique_points
from .report import render_series, render_table
from .runner import (
    RunResult, cache_dir, default_scale, path_ratio, run_point,
    source_hash,
)
from .store import (
    FileStore, ResultStore, SqliteStore, active_store,
)
from .rw import (
    REG_SIZES, RW_MODELS, fig4_execution_time, fig4_plan,
    fig5_cache_accesses, fig5_plan, fig6_plan, fig6_single_port,
    rw_plan, rw_sweep,
)
from .smt import (
    SMT_SIZES, fig7_smt, fig8_smt_rw, sec43_cache_traffic,
    select_workloads, smt_plan, smt_speedup_series, vectors_plan,
    weighted_speedup_of,
)

__all__ = [
    "EngineError", "ParallelEngine", "PointOutcome", "SerialEngine",
    "SweepProgress", "execute_plan", "Point", "SweepSpec",
    "unique_points", "render_series", "render_table", "RunResult",
    "cache_dir", "default_scale", "path_ratio", "run_point",
    "source_hash", "FileStore", "ResultStore", "SqliteStore",
    "active_store", "REG_SIZES", "RW_MODELS", "fig4_execution_time",
    "fig4_plan", "fig5_cache_accesses", "fig5_plan", "fig6_plan",
    "fig6_single_port", "rw_plan", "rw_sweep", "SMT_SIZES",
    "fig7_smt", "fig8_smt_rw", "sec43_cache_traffic",
    "select_workloads", "smt_plan", "smt_speedup_series",
    "vectors_plan", "weighted_speedup_of",
]
