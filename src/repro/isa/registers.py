"""Architectural register file layout for the VRISC ISA.

VRISC mirrors the paper's modified Alpha: 32 integer and 32
floating-point registers, partitioned into *global* (non-windowed) and
*windowed* subsets.  Following Section 3.1 of the paper, any register
used to communicate values across a function call is global; all other
registers are windowed and change on every call/return under the
windowed ABI.

Architectural register ids are small integers in ``[0, 64)``: integer
registers occupy ``0..31`` and floating-point registers ``32..63``.
"""

from __future__ import annotations

N_INT_REGS = 32
N_FP_REGS = 32
N_ARCH_REGS = N_INT_REGS + N_FP_REGS

# --- integer register conventions -------------------------------------
#: Argument / return-value registers (global: they cross call sites).
ARG_REGS = tuple(range(0, 8))
#: Return-value register.
RV_REG = 0
#: Stack pointer (global).
SP_REG = 30
#: Hard-wired zero register.
ZERO_REG = 31
#: Return-address register.  It is *windowed*: like SPARC's %o7, the
#: window shift preserves it across nested calls for free, while the
#: flat ABI must save/restore it in non-leaf functions.
RA_REG = 25

#: Windowed integer registers (callee-saved locals under the flat ABI).
WINDOWED_INT = tuple(range(8, 30))
#: Global integer registers.
GLOBAL_INT = tuple(r for r in range(N_INT_REGS) if r not in WINDOWED_INT)

# --- floating-point register conventions ------------------------------
FP_BASE = 32
#: FP argument / scratch registers (global).
FP_ARG_REGS = tuple(range(FP_BASE + 0, FP_BASE + 8))
#: Windowed FP registers.
WINDOWED_FP = tuple(range(FP_BASE + 8, FP_BASE + 32))
GLOBAL_FP = tuple(r for r in range(FP_BASE, FP_BASE + N_FP_REGS)
                  if r not in WINDOWED_FP)

WINDOWED_REGS = WINDOWED_INT + WINDOWED_FP
GLOBAL_REGS = tuple(sorted(GLOBAL_INT + GLOBAL_FP))

#: Registers per window frame (22 int + 24 fp).
WINDOW_REGS = len(WINDOWED_REGS)

# Dense slot numbering used to lay register frames out in memory.
_WINDOW_SLOT = {r: i for i, r in enumerate(WINDOWED_REGS)}
_GLOBAL_SLOT = {r: i for i, r in enumerate(GLOBAL_REGS)}


def is_fp(reg: int) -> bool:
    """True if ``reg`` names a floating-point register."""
    return reg >= FP_BASE


def is_windowed(reg: int) -> bool:
    """True if ``reg`` changes across calls under the windowed ABI."""
    return reg in _WINDOW_SLOT


def window_slot(reg: int) -> int:
    """Dense index of a windowed register within its frame."""
    return _WINDOW_SLOT[reg]


def global_slot(reg: int) -> int:
    """Dense index of a global register within the global frame."""
    return _GLOBAL_SLOT[reg]


def reg_name(reg: int) -> str:
    """Human-readable name (``r5``, ``f12``) for disassembly."""
    if reg < 0 or reg >= N_ARCH_REGS:
        raise ValueError(f"bad register id {reg}")
    if is_fp(reg):
        return f"f{reg - FP_BASE}"
    return f"r{reg}"


def parse_reg(name: str) -> int:
    """Inverse of :func:`reg_name`."""
    if len(name) < 2 or name[0] not in "rf":
        raise ValueError(f"bad register name {name!r}")
    idx = int(name[1:])
    if not 0 <= idx < 32:
        raise ValueError(f"bad register name {name!r}")
    return idx + (FP_BASE if name[0] == "f" else 0)
