"""VRISC: the small Alpha-flavoured ISA used by the reproduction."""

from .instruction import HALT, NOP, Instruction, make_call, make_ret
from .opcodes import (
    COND_BRANCH_OPS, CONTROL_OPS, FP_UNIT_OPS, LOAD_OPS, MEM_OPS,
    STORE_OPS, Op,
)
from .registers import (
    ARG_REGS, FP_ARG_REGS, FP_BASE, GLOBAL_REGS, N_ARCH_REGS, N_FP_REGS,
    N_INT_REGS, RA_REG, RV_REG, SP_REG, WINDOW_REGS, WINDOWED_FP,
    WINDOWED_INT, WINDOWED_REGS, ZERO_REG, global_slot, is_fp,
    is_windowed, parse_reg, reg_name, window_slot,
)

__all__ = [
    "Instruction", "Op", "NOP", "HALT", "make_call", "make_ret",
    "COND_BRANCH_OPS", "CONTROL_OPS", "FP_UNIT_OPS", "LOAD_OPS",
    "MEM_OPS", "STORE_OPS",
    "ARG_REGS", "FP_ARG_REGS", "FP_BASE", "GLOBAL_REGS", "N_ARCH_REGS",
    "N_FP_REGS", "N_INT_REGS", "RA_REG", "RV_REG", "SP_REG",
    "WINDOW_REGS", "WINDOWED_FP", "WINDOWED_INT", "WINDOWED_REGS",
    "ZERO_REG", "global_slot", "is_fp", "is_windowed", "parse_reg",
    "reg_name", "window_slot",
]
