"""Static instruction representation for VRISC.

An :class:`Instruction` is immutable once assembled.  The dynamic,
per-execution state (renamed operands, issue/commit timestamps, etc.)
lives in :class:`repro.pipeline.dyninst.DynInst`.

Program counters are instruction indices: one instruction per slot,
``pc + 1`` is the fall-through successor.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .opcodes import (
    COND_BRANCH_OPS, CONTROL_OPS, FP_ARITH_OPS, FP_UNIT_OPS, INT_RI_OPS,
    INT_RR_OPS, LOAD_OPS, LONG_INT_OPS, MEM_OPS, STORE_OPS, Op,
)
from .registers import (
    RA_REG, ZERO_REG, global_slot, is_windowed, reg_name, window_slot,
)

#: Control-transfer kinds consulted by the fetch stage (plain integer
#: compares are cheaper than an opcode chain on the per-fetch path).
CTRL_NONE = 0
CTRL_COND = 1
CTRL_BR = 2
CTRL_CALL = 3
CTRL_RET = 4
CTRL_JMP = 5


class Instruction:
    """One static VRISC instruction.

    Attributes:
        op: the opcode.
        rd: destination architectural register id, or ``None``.
        rs1: first source register id, or ``None``.
        rs2: second source register id, or ``None``.
        imm: immediate operand (also the displacement of loads/stores).
        target: branch/call target as an absolute instruction index;
            ``None`` until the assembler resolves labels.
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm", "target",
                 "is_load", "is_store", "is_mem", "is_branch",
                 "is_cond_branch", "is_call", "is_ret", "is_fp_unit",
                 "latency_class",
                 # Interned decode state: static per-instruction facts
                 # the timing model would otherwise recompute on every
                 # dynamic instance of the instruction.
                 "is_halt", "is_simple", "ctrl_kind", "srcs", "dest_reg",
                 "vca_srcs", "vca_dest", "exec_fn")

    def __init__(self, op: Op, rd: Optional[int] = None,
                 rs1: Optional[int] = None, rs2: Optional[int] = None,
                 imm: int = 0, target: Optional[int] = None) -> None:
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.target = target
        # Pre-computed classification flags, consulted on every cycle of
        # the timing model; computing them once keeps the hot loop lean.
        self.is_load = op in LOAD_OPS
        self.is_store = op in STORE_OPS
        self.is_mem = op in MEM_OPS
        self.is_branch = op in CONTROL_OPS
        self.is_cond_branch = op in COND_BRANCH_OPS
        self.is_call = op is Op.CALL
        self.is_ret = op is Op.RET
        self.is_fp_unit = op in FP_UNIT_OPS
        if op in LONG_INT_OPS:
            self.latency_class = "imul"
        elif op is Op.FDIV:
            self.latency_class = "fdiv"
        elif op is Op.FMUL:
            self.latency_class = "fpmul"
        elif op in FP_UNIT_OPS:
            self.latency_class = "fp"
        else:
            self.latency_class = "int"
        self._validate()
        self._intern_decode()

    def _intern_decode(self) -> None:
        """Precompute the decode facts the pipeline and rename engines
        consult per dynamic instance.  Instructions are immutable and
        shared between all of their dynamic instances, so one decode at
        assembly time replaces millions of re-decodes in the cycle loop.
        """
        op = self.op
        self.is_halt = op is Op.HALT
        self.is_simple = op is Op.NOP or op is Op.HALT
        if self.is_cond_branch:
            self.ctrl_kind = CTRL_COND
        elif op is Op.BR:
            self.ctrl_kind = CTRL_BR
        elif self.is_call:
            self.ctrl_kind = CTRL_CALL
        elif self.is_ret:
            self.ctrl_kind = CTRL_RET
        elif op is Op.JMP:
            self.ctrl_kind = CTRL_JMP
        else:
            self.ctrl_kind = CTRL_NONE
        self.srcs = tuple(r for r in (self.rs1, self.rs2)
                          if r is not None and r != ZERO_REG)
        self.dest_reg = None if self.rd == ZERO_REG else self.rd
        # VCA operand views: (arch reg, windowed?, byte offset within
        # the frame) — the engine adds the thread's base pointer.
        self.vca_srcs = tuple(
            (r, is_windowed(r),
             (window_slot(r) if is_windowed(r) else global_slot(r)) * 8)
            for r in self.srcs)
        d = self.dest_reg
        self.vca_dest = None if d is None else (
            is_windowed(d),
            (window_slot(d) if is_windowed(d) else global_slot(d)) * 8)
        #: Specialized executor closure, built lazily by
        #: :func:`repro.pipeline.alu.execute` on first execution.
        self.exec_fn = None

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        op = self.op
        if op in INT_RR_OPS or op in FP_ARITH_OPS and op is not Op.FMOV:
            if self.rd is None or self.rs1 is None or self.rs2 is None:
                raise ValueError(f"{op.name} needs rd, rs1, rs2")
        elif op in INT_RI_OPS:
            if self.rd is None or self.rs1 is None:
                raise ValueError(f"{op.name} needs rd, rs1")
        elif op in MEM_OPS:
            if self.rs1 is None:
                raise ValueError(f"{op.name} needs a base register")
            if op in STORE_OPS and self.rs2 is None:
                raise ValueError(f"{op.name} needs a data register")
            if op in LOAD_OPS and self.rd is None:
                raise ValueError(f"{op.name} needs a destination")

    # -- operand views used by rename ----------------------------------
    def sources(self) -> Tuple[int, ...]:
        """Architectural source registers, zero-register reads excluded."""
        return self.srcs

    def dest(self) -> Optional[int]:
        """Architectural destination register, or ``None``.

        Writes to the hard-wired zero register are discarded and
        therefore report no destination.
        """
        return self.dest_reg

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Instruction {self.disassemble()}>"

    def disassemble(self) -> str:
        """Render the instruction in assembly-ish syntax."""
        op = self.op
        parts = [op.name.lower()]
        ops = []
        if self.rd is not None:
            ops.append(reg_name(self.rd))
        if op in MEM_OPS:
            if op in STORE_OPS:
                ops.append(reg_name(self.rs2))
            ops.append(f"{self.imm}({reg_name(self.rs1)})")
        else:
            if self.rs1 is not None:
                ops.append(reg_name(self.rs1))
            if self.rs2 is not None:
                ops.append(reg_name(self.rs2))
            if op in INT_RI_OPS or op is Op.LDI:
                ops.append(str(self.imm))
        if self.target is not None:
            ops.append(f"@{self.target}")
        if ops:
            parts.append(" " + ", ".join(ops))
        return "".join(parts)


# Convenience constructors -------------------------------------------------

def make_call(target: Optional[int] = None) -> Instruction:
    """A call writing the return address to the RA register."""
    return Instruction(Op.CALL, rd=RA_REG, target=target)


def make_ret() -> Instruction:
    """A return jumping through the RA register."""
    return Instruction(Op.RET, rs1=RA_REG)


NOP = Instruction(Op.NOP)
HALT = Instruction(Op.HALT)
