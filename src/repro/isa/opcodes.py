"""VRISC opcode definitions.

VRISC is a small Alpha-flavoured load/store ISA: three-operand register
arithmetic, register+immediate addressing, single-register conditional
branches, and explicit call/return opcodes.  Under the windowed ABI the
``CALL``/``RET`` opcodes are overloaded to allocate and deallocate a
register window (Section 3.1 of the paper); the encodings themselves do
not change, which is what makes the windowed variant "backward
compatible ... with only minimal ISA changes".
"""

from __future__ import annotations

import enum


class Op(enum.Enum):
    # integer register-register
    ADD = enum.auto()
    SUB = enum.auto()
    MUL = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SLL = enum.auto()
    SRL = enum.auto()
    CMPEQ = enum.auto()
    CMPLT = enum.auto()
    CMPLE = enum.auto()
    # integer register-immediate
    ADDI = enum.auto()
    SUBI = enum.auto()
    MULI = enum.auto()
    ANDI = enum.auto()
    ORI = enum.auto()
    XORI = enum.auto()
    SLLI = enum.auto()
    SRLI = enum.auto()
    CMPEQI = enum.auto()
    CMPLTI = enum.auto()
    LDI = enum.auto()          # rd <- imm (64-bit literal)
    # memory
    LD = enum.auto()           # rd <- mem[rs1 + imm]
    ST = enum.auto()           # mem[rs1 + imm] <- rs2
    FLD = enum.auto()          # fd <- mem[rs1 + imm]
    FST = enum.auto()          # mem[rs1 + imm] <- fs2
    # control
    BEQ = enum.auto()          # if rs1 == 0 goto target
    BNE = enum.auto()          # if rs1 != 0 goto target
    BLT = enum.auto()          # if signed(rs1) < 0 goto target
    BGE = enum.auto()          # if signed(rs1) >= 0 goto target
    BR = enum.auto()           # goto target
    CALL = enum.auto()         # ra <- pc + 1; goto target (window push)
    RET = enum.auto()          # goto ra (window pop)
    JMP = enum.auto()          # goto rs1 (indirect, no window effect)
    # floating point
    FADD = enum.auto()
    FSUB = enum.auto()
    FMUL = enum.auto()
    FDIV = enum.auto()
    FCMPLT = enum.auto()       # fd <- 1.0 if fs1 < fs2 else 0.0
    FCMPEQ = enum.auto()
    FBEQ = enum.auto()         # if fs1 == 0.0 goto target
    FBNE = enum.auto()         # if fs1 != 0.0 goto target
    ITOF = enum.auto()         # fd <- float(rs1)
    FTOI = enum.auto()         # rd <- int(fs1)
    FMOV = enum.auto()
    # misc
    NOP = enum.auto()
    HALT = enum.auto()


#: Integer ALU ops writing an integer destination from rs1, rs2.
INT_RR_OPS = frozenset({
    Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL,
    Op.CMPEQ, Op.CMPLT, Op.CMPLE,
})

#: Integer ALU ops writing an integer destination from rs1, imm.
INT_RI_OPS = frozenset({
    Op.ADDI, Op.SUBI, Op.MULI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI,
    Op.SRLI, Op.CMPEQI, Op.CMPLTI,
})

LOAD_OPS = frozenset({Op.LD, Op.FLD})
STORE_OPS = frozenset({Op.ST, Op.FST})
MEM_OPS = LOAD_OPS | STORE_OPS

COND_BRANCH_OPS = frozenset({
    Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.FBEQ, Op.FBNE,
})
#: Every op that can redirect the PC.
CONTROL_OPS = COND_BRANCH_OPS | {Op.BR, Op.CALL, Op.RET, Op.JMP}

FP_ARITH_OPS = frozenset({
    Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FCMPLT, Op.FCMPEQ, Op.FMOV,
})

#: Ops dispatched to the floating-point units.
FP_UNIT_OPS = FP_ARITH_OPS | {Op.ITOF, Op.FTOI}

LONG_INT_OPS = frozenset({Op.MUL, Op.MULI})
