"""Machine configuration for the VCA reproduction.

The defaults encode Table 1 of the paper ("Baseline processor
parameters") plus the VCA-specific structures described in Sections 2
and 3: the tagged set-associative rename table, the RSID translation
table, and the architectural state transfer queue (ASTQ).

All timing experiments in :mod:`repro` are parameterised by a single
:class:`MachineConfig` instance; the four machine models of the paper
(baseline, conventional register windows, ideal register windows, and
VCA) are selected with :class:`RenameModel` / :class:`WindowModel`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class RenameModel(enum.Enum):
    """Which register-rename engine the core uses."""

    #: Conventional map table + free list (the paper's baseline).
    CONVENTIONAL = "conventional"
    #: The virtual context architecture (Section 2).
    VCA = "vca"


class WindowModel(enum.Enum):
    """How register windows are provided, if at all."""

    #: Flat ABI; no windows (the paper's non-windowed baseline).
    NONE = "none"
    #: Windowed ABI on an expanded logical register file with
    #: trap-based overflow/underflow handling (Section 4.1).
    CONVENTIONAL = "conventional"
    #: Windowed ABI with instantaneous, traffic-free spills and fills
    #: (the paper's idealised lower bound).
    IDEAL = "ideal"
    #: Windowed ABI implemented by VCA base-pointer updates.
    VCA = "vca"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and hit latency of one cache level."""

    size_bytes: int
    assoc: int
    block_bytes: int
    hit_latency: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.block_bytes):
            raise ValueError("cache size must be a multiple of assoc*block")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.block_bytes)


@dataclass(frozen=True)
class MachineConfig:
    """Full machine description.

    The zero-argument constructor yields the paper's Table 1 baseline
    with 256 physical registers; use :meth:`baseline` or
    :func:`dataclasses.replace` for variants.
    """

    # --- Table 1: baseline processor parameters -------------------
    width: int = 4                     # machine width (fetch/rename/issue/commit)
    iq_size: int = 128                 # instruction queue entries
    rob_size: int = 192                # reorder buffer entries
    lsq_size: int = 64                 # load/store queue entries
    pipeline_depth: int = 8            # fetch to execute, cycles (Table 1)
    dl1_ports: int = 2                 # shared read/write data-cache ports
    dl1: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 4, 64, 3))
    il1: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 4, 64, 1))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(1024 * 1024, 4, 64, 15))
    mem_latency: int = 250             # cycles
    phys_regs: int = 256

    # --- model selection ------------------------------------------
    rename_model: RenameModel = RenameModel.CONVENTIONAL
    window_model: WindowModel = WindowModel.NONE
    n_threads: int = 1

    # --- VCA structures (Sections 2.2 and 3) -----------------------
    #: Sets in the tagged rename table ("64 entries per way").
    vca_table_sets: int = 64
    #: Associativity; 0 means "per Table note": 3/5/6 ways for 1/2/4
    #: threads respectively.
    vca_table_assoc: int = 0
    #: Rename-table ports per cycle (paper: 8; reads of the same
    #: register are combined).
    vca_rename_ports: int = 8
    #: ASTQ entries (paper: 4 suffice).
    astq_size: int = 4
    #: Spill/fill operations written into the ASTQ per cycle (paper: 2).
    astq_writes_per_cycle: int = 2
    #: Entries in the RSID translation table (Section 2.2.1 example: 16).
    rsid_entries: int = 16
    #: Low-order register-address bits covered by one register space
    #: (Fig. 3: a 16-bit register-space offset -> 64 KiB spaces).
    rsid_offset_bits: int = 16
    #: Replacement recency floor in cycles: cached registers used more
    #: recently than this are never chosen as spill victims (rename
    #: stalls instead).  This keeps the live working set resident
    #: rather than cycling it through memory when in-flight demand
    #: spikes; 0 disables the protection (pure LRU) for ablation.
    vca_protect_cycles: int = 64
    #: Dead-value extension (the paper's Section 6 future work): when
    #: a return commits under the windowed ABI, the departing window's
    #: registers are architecturally dead — every activation starts
    #: with a fresh window — so their cached physical registers are
    #: reclaimed immediately without spilling.  Off by default to
    #: match the paper's evaluated design.
    vca_dead_window_hint: bool = False

    # --- functional-unit pool --------------------------------------
    int_alus: int = 4
    int_mult_latency: int = 7
    fp_units: int = 2
    fp_add_latency: int = 4
    fp_mul_latency: int = 4
    fp_div_latency: int = 12

    # --- conventional register windows (Section 4.1) ---------------
    #: Cycles of pipeline delay modelling the overflow/underflow trap.
    window_trap_cycles: int = 10
    #: Minimum rename registers the conventional-window machine must
    #: leave after carving logical windows out of the physical file.
    window_min_rename_regs: int = 64

    # --- safety / harness -------------------------------------------
    max_cycles: int = 50_000_000

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be >= 1")
        if self.n_threads not in (1, 2, 4, 8):
            raise ValueError("n_threads must be 1, 2, 4 or 8")
        if self.pipeline_depth < 4:
            raise ValueError("pipeline_depth must be >= 4 (fetch..execute)")
        if self.phys_regs < 1:
            raise ValueError("phys_regs must be positive")

    # ------------------------------------------------------------------
    @classmethod
    def baseline(cls, phys_regs: int = 256, **overrides) -> "MachineConfig":
        """The Table 1 baseline machine with ``phys_regs`` registers."""
        return cls(phys_regs=phys_regs, **overrides)

    def with_(self, **overrides) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    @property
    def effective_vca_assoc(self) -> int:
        """Rename-table associativity after the per-thread-count rule.

        Section 3: associativity of 3, 5, or 6 (192, 320, or 384
        entries) for one, two, and four threads respectively.
        """
        if self.vca_table_assoc:
            return self.vca_table_assoc
        return {1: 3, 2: 5, 4: 6, 8: 8}[self.n_threads]

    @property
    def front_latency(self) -> int:
        """Cycles an instruction spends between fetch and rename entry.

        The paper charges VCA one extra rename stage (Fig. 1, stage
        R2); we account for it here so ``pipeline_depth`` stays the
        quoted fetch-to-execute depth for the baseline.
        """
        # fetch..execute = front_latency + rename(1) + dispatch(1) + issue(1)
        extra = 1 if self.rename_model is RenameModel.VCA else 0
        return self.pipeline_depth - 3 + extra

    @property
    def uses_windowed_abi(self) -> bool:
        return self.window_model is not WindowModel.NONE
