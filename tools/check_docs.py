#!/usr/bin/env python3
"""Documentation checker: dead links, orphan pages, fenced doctests.

Three checks over ``README.md`` and every ``docs/*.md`` page, all
enforced by ``tests/test_docs.py`` and the CI ``docs`` job:

1. **Links** — every relative markdown link target must exist on
   disk (resolved against the linking file's directory; ``#fragment``
   suffixes are stripped).  External (``http``/``https``/``mailto``)
   and pure-anchor links are skipped.
2. **Orphans** — every ``docs/*.md`` page must be reachable from
   ``docs/index.md`` by following relative links (breadth-first), so
   a new page cannot silently fall outside the documentation tree.
3. **Doctests** — every fenced ```` ```python ```` block containing
   ``>>>`` examples is executed with the standard :mod:`doctest`
   machinery, so documentation examples cannot silently rot.

Stdlib only; run as ``python tools/check_docs.py`` from anywhere in
the repo (exit status 1 on any failure).
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import List, Tuple

#: Inline markdown links/images: ``[text](target)`` — the target up to
#: the first whitespace or closing paren (titles are not used here).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
#: Fenced python code blocks.
FENCE_RE = re.compile(r"^```python\s*\n(.*?)^```\s*$",
                      re.MULTILINE | re.DOTALL)
_EXTERNAL = ("http://", "https://", "mailto:")


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def doc_files(root: Path) -> List[Path]:
    """The files under check: the README plus every docs page."""
    return [root / "README.md"] + sorted((root / "docs").glob("*.md"))


def check_links(path: Path) -> List[str]:
    """Dead-relative-link errors in one markdown file (empty = clean)."""
    errors = []
    text = path.read_text()
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        if not (path.parent / rel).exists():
            line = text.count("\n", 0, match.start()) + 1
            errors.append(f"{path.name}:{line}: dead link -> {target}")
    return errors


def check_orphans(root: Path) -> List[str]:
    """Orphan-page errors: ``docs/*.md`` files no chain of relative
    links from ``docs/index.md`` reaches (empty = clean)."""
    docs = root / "docs"
    index = docs / "index.md"
    if not index.exists():
        return [f"missing documentation index: {index}"]
    seen = {index.resolve()}
    frontier = [index]
    while frontier:
        page = frontier.pop()
        for match in LINK_RE.finditer(page.read_text()):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            linked = (page.parent / rel).resolve()
            if (linked.suffix == ".md" and linked.exists()
                    and linked not in seen):
                seen.add(linked)
                frontier.append(linked)
    return [f"{p.name}: orphan page (not reachable from "
            f"docs/index.md)"
            for p in sorted(docs.glob("*.md"))
            if p.resolve() not in seen]


def run_doctests(path: Path) -> Tuple[int, List[str]]:
    """Execute the ``>>>`` examples in ``path``'s python fences.

    Returns ``(examples_run, failures)`` where each failure is a
    human-readable report.  Blocks without ``>>>`` (illustrative
    snippets) are skipped.
    """
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(verbose=False,
                                   optionflags=doctest.ELLIPSIS)
    text = path.read_text()
    total = 0
    failures: List[str] = []
    for i, match in enumerate(FENCE_RE.finditer(text)):
        block = match.group(1)
        if ">>>" not in block:
            continue
        lineno = text.count("\n", 0, match.start())
        test = parser.get_doctest(block, {}, f"{path.name}[{i}]",
                                  str(path), lineno)
        if not test.examples:
            continue
        total += len(test.examples)
        out: List[str] = []
        result = runner.run(test, out=out.append)
        if result.failed:
            failures.append("".join(out))
    return total, failures


def main() -> int:
    root = repo_root()
    # Doc examples import repro; make src/ importable when the repo
    # is not pip-installed (CI runs this script directly).
    src = root / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))

    files = doc_files(root)
    missing = [f for f in files if not f.exists()]
    if missing:
        for f in missing:
            print(f"missing documentation file: {f}", file=sys.stderr)
        return 1

    ok = True
    n_links = n_examples = 0
    for err in check_orphans(root):
        ok = False
        print(err, file=sys.stderr)
    for f in files:
        errors = check_links(f)
        n_links += len(LINK_RE.findall(f.read_text()))
        for err in errors:
            ok = False
            print(err, file=sys.stderr)
        ran, failures = run_doctests(f)
        n_examples += ran
        for report in failures:
            ok = False
            print(f"{f.name}: doctest failure\n{report}",
                  file=sys.stderr)
    status = "OK" if ok else "FAILED"
    print(f"docs check {status}: {len(files)} files, "
          f"{n_links} links, {n_examples} doctest examples")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
