#!/usr/bin/env python3
"""Shared entry point for the repository's static CI checks.

Runs, in order:

* ``lint`` — ``repro lint --strict`` (the simulator-aware static
  analysis suite, ``docs/linting.md``); strict mode also fails on
  stale baseline entries so ``tools/lint_baseline.json`` shrinks
  monotonically.
* ``docs`` — ``tools/check_docs.py`` (markdown link check + fenced
  doctest runner over README.md and docs/).
* ``store`` — the repository layer's end-to-end self-check
  (``repro.experiments.store.store_self_check``): migration
  round-trip, upsert atomicity, fallback promotion, claim
  exclusivity, and sqlite integrity on a throwaway store.
* ``concurrency`` — ``repro lint --strict --families K,F,X``: just
  the concurrency families (lock discipline, fork safety, resource
  lifecycle; ``docs/concurrency.md``). Redundant with ``lint`` when
  both run, but exposed separately so the concurrency gate can be
  invoked (and reported) on its own.

Usage::

    python tools/ci_checks.py            # every check
    python tools/ci_checks.py lint       # one check by name

Exit status is non-zero if any selected check fails; every selected
check runs even after an earlier failure, so one CI job reports all
of them.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "tools"))


def check_lint() -> int:
    from repro.cli import main
    return main(["lint", "--strict"])


def check_docs() -> int:
    import check_docs
    return check_docs.main()


def check_store() -> int:
    from repro.experiments.store import store_self_check
    return store_self_check()


def check_concurrency() -> int:
    from repro.cli import main
    return main(["lint", "--strict", "--families", "K,F,X"])


CHECKS = {
    "lint": check_lint,
    "docs": check_docs,
    "store": check_store,
    "concurrency": check_concurrency,
}


def main(argv=None) -> int:
    names = list(argv if argv is not None else sys.argv[1:]) or \
        list(CHECKS)
    unknown = [n for n in names if n not in CHECKS]
    if unknown:
        print(f"ci_checks: unknown check(s) {unknown}; "
              f"available: {sorted(CHECKS)}", file=sys.stderr)
        return 2
    failed = []
    for name in names:
        print(f"== {name} ==")
        if CHECKS[name]() != 0:
            failed.append(name)
    if failed:
        print(f"ci_checks: FAILED: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print(f"ci_checks: OK ({', '.join(names)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
