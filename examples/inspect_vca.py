#!/usr/bin/env python3
"""Looking inside VCA: watch the register file behave like a cache.

Runs a deep recursive program on VCA with a deliberately tiny physical
register file and periodically samples the Figure 2 state machine —
how many registers are pinned by in-flight instructions, how many hold
cached committed values, and how spills/fills migrate inactive window
frames to memory and back.

Run: ``python examples/inspect_vca.py``
"""

from repro.asm import ProgramBuilder
from repro.config import MachineConfig
from repro.models import build_machine


def deep_recursion() -> ProgramBuilder:
    """Recursion 40 deep with 10 windowed locals per frame: far more
    live logical registers than the machine has physical ones."""
    pb = ProgramBuilder(name="deep")
    out = pb.alloc(1)
    main = pb.function("main", is_main=True)
    main.li(0, 40)
    main.call("rec")
    main.li(1, out)
    main.st(0, 1, 0)
    main.halt()

    rec = pb.function("rec")
    rec.cmplti(1, 0, 1)
    rec.bne(1, "base")
    locals_ = list(range(8, 18))
    for i, r in enumerate(locals_):
        rec.addi(r, 0, i + 1)
    rec.subi(0, 0, 1)
    rec.call("rec")
    for r in locals_:
        rec.add(0, 0, r)
    rec.ret()
    rec.label("base")
    rec.li(0, 1)
    rec.ret()
    return pb


def main() -> None:
    prog = deep_recursion().assemble("windowed")
    cfg = MachineConfig.baseline(phys_regs=64)
    machine = build_machine("vca-rw", cfg, [prog])
    engine = machine.engine

    print("VCA with 64 physical registers; 40-deep recursion,"
          " 10 locals/frame\n")
    print(f"{'cycle':>7s} {'depth':>6s} {'pinned':>7s} {'cached':>7s} "
          f"{'free':>5s} {'spills':>7s} {'fills':>6s} {'table':>6s}")

    step = machine.step
    last = [0]

    def traced_step():
        step()
        if machine.cycle - last[0] >= 250:
            last[0] = machine.cycle
            regs = engine.regfile.regs
            pinned = sum(1 for r in regs if r.pinned)
            cached = sum(1 for r in regs if r.cached and r.in_table)
            print(f"{machine.cycle:7d} {engine.contexts[0].depth:6d} "
                  f"{pinned:7d} {cached:7d} {engine.regfile.n_free:5d} "
                  f"{engine.astq.spills:7d} {engine.astq.fills:6d} "
                  f"{engine.table.occupancy:6d}")
    machine.step = traced_step

    stats = machine.run()
    print(f"\nfinished: {stats.cycles} cycles, "
          f"{stats.committed} instructions, "
          f"{stats.spills} spills / {stats.fills} fills")
    print(f"result at {prog.data_base:#x}: "
          f"{machine.hierarchy.read_word(prog.data_base)}")
    print("\nEvery window frame beyond what 64 registers can hold was"
          "\nspilled to the memory-mapped register space on the way"
          "\ndown and filled back on demand on the way up — no traps,"
          "\nno whole-window copies.")


if __name__ == "__main__":
    main()
