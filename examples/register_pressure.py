#!/usr/bin/env python3
"""Register-file pressure study: how each machine degrades as the
physical register file shrinks (the Figure 4 experiment on one
benchmark, with VCA internals exposed).

Uses the synthetic ``perlbmk_535`` benchmark — deep call recursion and
heavy per-frame register pressure — and sweeps 64..256 physical
registers, reporting execution time, spill/fill traffic and window
traps for every machine.

Run: ``python examples/register_pressure.py``
"""

from repro.config import MachineConfig
from repro.models import build_machine, model_abi
from repro.rename.base import UnrunnableConfigError
from repro.workloads.generator import benchmark_program

BENCH = "perlbmk_535"
MODELS = ("baseline", "conventional-rw", "ideal-rw", "vca-rw")
SIZES = (64, 96, 128, 192, 256)


def main() -> None:
    print(f"benchmark: {BENCH} (deep recursion, fat frames)\n")
    header = (f"{'model':16s} " +
              " ".join(f"{s:>9d}" for s in SIZES))
    print("execution cycles per register-file size:")
    print(header)
    details = {}
    for model in MODELS:
        row = []
        for size in SIZES:
            prog = benchmark_program(BENCH, model_abi(model))
            try:
                machine = build_machine(
                    model, MachineConfig.baseline(phys_regs=size), [prog])
            except UnrunnableConfigError:
                row.append(None)
                continue
            stats = machine.run()
            row.append(stats)
            details[(model, size)] = stats
        print(f"{model:16s} " + " ".join(
            f"{s.cycles:9d}" if s else f"{'--':>9s}" for s in row))

    print("\nVCA spill/fill traffic (individual registers on demand):")
    print(f"{'regs':>6s} {'spills':>8s} {'fills':>8s} {'DL1/instr':>10s}")
    for size in SIZES:
        s = details.get(("vca-rw", size))
        if s:
            print(f"{size:6d} {s.spills:8d} {s.fills:8d} "
                  f"{s.dl1_accesses_per_instr:10.3f}")

    print("\nconventional window machine trap behaviour (whole windows):")
    print(f"{'regs':>6s} {'overflows':>10s} {'underflows':>11s} "
          f"{'trap cycles':>12s}")
    for size in SIZES:
        s = details.get(("conventional-rw", size))
        if s:
            print(f"{size:6d} {s.window_overflows:10d} "
                  f"{s.window_underflows:11d} {s.window_trap_cycles:12d}")

    print("\nNote how VCA's traffic grows smoothly as registers shrink,"
          "\nwhile the conventional machine pays bursty whole-window"
          "\ntraps — the contrast at the heart of the paper's Figure 5.")


if __name__ == "__main__":
    main()
