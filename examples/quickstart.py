#!/usr/bin/env python3
"""Quickstart: build a tiny program, run it on the four machines.

Demonstrates the core public API end to end:

1. Write a program once with :class:`ProgramBuilder`; lower it to the
   flat ABI (explicit callee-save code) and the windowed ABI.
2. Validate it with the functional interpreter.
3. Run it through the cycle-level timing models — the conventional
   baseline, the trap-based conventional register-window machine, the
   idealised window machine, and the Virtual Context Architecture —
   and compare cycles and data-cache traffic.

Run: ``python examples/quickstart.py``
"""

from repro.asm import ProgramBuilder
from repro.config import MachineConfig
from repro.functional import FunctionalSim
from repro.models import MODELS, build_machine, model_abi


def build_demo() -> ProgramBuilder:
    """A call-heavy toy program: main loops over a worker that uses
    several callee-saved locals, so the flat ABI pays save/restore
    loads and stores that register windows eliminate."""
    pb = ProgramBuilder(name="demo")
    out = pb.alloc(1)

    main = pb.function("main", is_main=True)
    main.li(8, 200)           # loop counter (windowed local)
    main.li(9, 0)             # accumulator
    main.label("loop")
    main.mov(0, 9)            # argument
    main.call("worker")
    main.add(9, 9, 0)         # fold in the result
    main.subi(8, 8, 1)
    main.bne(8, "loop")
    main.li(1, out)
    main.st(9, 1, 0)
    main.halt()

    w = pb.function("worker")
    locals_ = [10, 11, 12, 13, 14, 15]
    for i, r in enumerate(locals_):
        w.addi(r, 0, 3 * i + 1)       # initialise six locals
    for r in locals_:
        w.xor(10, 10, r)
        w.add(0, 0, r)
    w.ret()
    return pb


def main() -> None:
    pb = build_demo()

    # Golden reference: both ABI lowerings compute the same result.
    flat = FunctionalSim(build_demo().assemble("flat"))
    flat.run()
    windowed = FunctionalSim(build_demo().assemble("windowed"))
    windowed.run()
    print("functional check:")
    print(f"  flat     : {flat.stats.instructions:6d} instructions")
    print(f"  windowed : {windowed.stats.instructions:6d} instructions "
          f"(path ratio {windowed.stats.instructions / flat.stats.instructions:.3f})")

    print("\ntiming models (256 physical registers):")
    print(f"  {'model':16s} {'cycles':>8s} {'IPC':>6s} {'DL1 accesses':>13s}")
    for model in sorted(MODELS):
        prog = build_demo().assemble(model_abi(model))
        machine = build_machine(model, MachineConfig.baseline(), [prog])
        stats = machine.run()
        print(f"  {model:16s} {stats.cycles:8d} {stats.ipc:6.2f} "
              f"{stats.dl1_accesses:13d}")

    print("\nThe windowed machines execute fewer instructions and make"
          "\nfewer data-cache accesses; VCA achieves this with a"
          "\nconventional-size register file by spilling and filling"
          "\nindividual registers on demand.")


if __name__ == "__main__":
    main()
