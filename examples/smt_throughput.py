#!/usr/bin/env python3
"""SMT throughput with VCA: four threads on a small register file.

Reproduces the Section 4.2 story in miniature: a conventional SMT
machine must hold every thread's full architectural state (64
registers per thread) in the physical register file, so four threads
cannot even boot below 257 registers.  VCA treats the register file as
a cache of the memory-mapped register space, so it runs four threads
on 192 registers at essentially full speed.

Run: ``python examples/smt_throughput.py``
"""

from repro.config import MachineConfig
from repro.models import build_machine
from repro.rename.base import UnrunnableConfigError
from repro.workloads.generator import benchmark_program

#: A mixed four-thread workload: two compute-bound integer codes, one
#: FP stream, one memory-bound pointer chaser.
WORKLOAD = ("gzip_graphic", "crafty", "swim", "mcf")
SIZES = (128, 192, 256, 320, 448)


def run(model: str, size: int):
    progs = [benchmark_program(b, "flat", thread=i)
             for i, b in enumerate(WORKLOAD)]
    try:
        machine = build_machine(
            model, MachineConfig.baseline(phys_regs=size), progs)
    except UnrunnableConfigError:
        return None
    return machine.run(stop_at_first_halt=True)


def main() -> None:
    print("workload:", ", ".join(WORKLOAD), "\n")
    print(f"{'regs':>6s} | {'baseline IPC':>13s} {'per-thread':>22s} | "
          f"{'VCA IPC':>8s} {'per-thread':>22s} {'spills':>7s}")
    for size in SIZES:
        cells = []
        for model in ("baseline", "vca"):
            s = run(model, size)
            if s is None:
                cells.append((None, None, None))
            else:
                per = "/".join(f"{s.thread_ipc(i):.2f}"
                               for i in range(len(WORKLOAD)))
                cells.append((s.ipc, per, s.spills))
        b, v = cells
        bs = f"{b[0]:13.2f} {b[1]:>22s}" if b[0] else f"{'cannot run':>36s}"
        vs = f"{v[0]:8.2f} {v[1]:>22s} {v[2]:7d}"
        print(f"{size:6d} | {bs} | {vs}")

    print("\nThe conventional machine needs >256 registers just to hold"
          "\nfour architectural contexts; VCA runs the same workload on"
          "\n192 by keeping only the active register values resident.")


if __name__ == "__main__":
    main()
